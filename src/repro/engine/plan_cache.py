"""Normalized-SQL plan cache: repeated statements skip the whole frontend.

A statement's journey without this cache is lexer -> parser -> binder ->
optimizer on *every* execution, even when the text is byte-identical to
the previous query.  The plan cache short-circuits that at two levels:

1. **Text memo** — exact text (per default model) maps straight to its
   :class:`~repro.engine.sql.canonical.CanonicalQuery`, skipping even
   the lexer on repeats.  Safe to key on raw text because parsing is
   deterministic and context-free: the same text always produces the
   same AST regardless of catalog state.
2. **Plan store** — the canonical family digest plus the concrete
   literal tuple, the catalog/statistics **version**, and the default
   model name key a fully optimized logical plan (physical hints
   annotated).  A hit goes straight to ``build_physical``; a cached
   plan is never mutated by execution, so one entry serves any number
   of concurrent clients.

Invalidation is **versioned**, not evented: every ``register_table``,
``drop``, or statistics refresh bumps ``Catalog.version``, and since
the version is part of the key, stale plans simply stop matching.  A
lazy sweep drops old-version entries whenever a newer version is first
seen, so they do not squat in the LRU budget.

The cached artifact is the *optimized logical plan*, not the physical
operator tree: physical operators are stateful one-shot iterators
(row counters, batch cursors), so each execution instantiates fresh
ones from the cached plan — instantiation is microseconds, while the
skipped parse/bind/optimize is the expensive part.

A note on what a version-keyed cache does **not** promise: a query that
runs concurrently with a ``register_table`` may execute a plan bound
against either catalog state — the same non-snapshot semantics the
engine always had.  The cache only guarantees a *later* lookup never
returns a plan built before the change.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.engine.sql.canonical import CanonicalQuery
from repro.obs.metrics import MetricsRegistry, hit_ratio

#: Default number of cached plans (and memoized texts) kept.
DEFAULT_PLAN_CACHE_CAPACITY = 256

#: ``(*CanonicalQuery.key, catalog_version, model_name)`` — the literal
#: tuple inside ``CanonicalQuery.key`` is heterogeneous, hence ``Any``.
_PlanKey = tuple[Any, ...]


@dataclass
class CachedPlan:
    """One optimized plan plus the metadata admission control needs."""

    plan: object                 # relational.logical.LogicalPlan
    #: Optimizer's total cost estimate — the scheduler's admission
    #: classifier reads this on a hit without re-costing anything.
    estimated_cost: float
    canonical: CanonicalQuery
    catalog_version: int
    model_name: str
    #: Subsumption spec (repro.reuse.analysis.ReuseSpec) when the plan
    #: was augmented for semantic reuse; None otherwise.
    reuse: object | None = None
    hits: int = 0


@dataclass
class PlanCacheStats:
    """Counters the benchmarks and server metrics read."""

    hits: int = 0
    misses: int = 0
    text_memo_hits: int = 0
    evictions: int = 0
    stale_evictions: int = 0
    entries: int = 0
    families: int = 0

    @property
    def hit_rate(self) -> float:
        return hit_ratio(self.hits, self.misses)

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "text_memo_hits": self.text_memo_hits,
            "evictions": self.evictions,
            "stale_evictions": self.stale_evictions,
            "entries": self.entries,
            "families": self.families,
        }


class PlanCache:
    """LRU cache of optimized plans keyed on canonical digest + version."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY,
                 registry: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: OrderedDict[_PlanKey, CachedPlan] = OrderedDict()
        self._texts: OrderedDict[tuple[str, str], CanonicalQuery] = \
            OrderedDict()
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "plan_cache_hits_total", help="optimized-plan cache hits")
        self._misses = registry.counter(
            "plan_cache_misses_total", help="optimized-plan cache misses")
        self._text_memo_hits = registry.counter(
            "plan_cache_text_memo_hits_total",
            help="exact-text memo hits (lexer skipped)")
        self._evictions = registry.counter(
            "plan_cache_evictions_total", help="LRU evictions")
        self._stale_evictions = registry.counter(
            "plan_cache_stale_evictions_total",
            help="old-catalog-version entries swept")
        registry.gauge("plan_cache_entries", fn=lambda: len(self._plans),
                       help="cached plans resident")
        registry.gauge(
            "plan_cache_hit_ratio",
            fn=lambda: hit_ratio(self._hits.value, self._misses.value),
            help="hits / (hits + misses); 0.0 before any probe")
        self._newest_version = -1

    # -- lookups --------------------------------------------------------
    def canonical_for(self, text: str, model_name: str
                      ) -> CanonicalQuery | None:
        """The memoized canonical form of ``text``, if seen before.

        ``None`` means the caller must lex/parse/canonicalize (and then
        :meth:`put` or :meth:`memo_text` the result).
        """
        with self._lock:
            memo = self._texts.get((text, model_name))
            if memo is not None:
                self._text_memo_hits.inc()
                self._texts.move_to_end((text, model_name))
            return memo

    def get(self, canonical: CanonicalQuery, catalog_version: int,
            model_name: str) -> CachedPlan | None:
        """The cached plan for an exact canonical statement, or ``None``."""
        key = (*canonical.key, catalog_version, model_name)
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._hits.inc()
            entry.hits += 1
            self._plans.move_to_end(key)
            return entry

    # -- population -----------------------------------------------------
    def memo_text(self, text: str, model_name: str,
                  canonical: CanonicalQuery) -> None:
        """Record text -> canonical so later repeats skip the lexer."""
        with self._lock:
            self._memo_text_locked(text, model_name, canonical)

    def put(self, text: str, canonical: CanonicalQuery,
            catalog_version: int, model_name: str, plan: object,
            estimated_cost: float, reuse: object | None = None
            ) -> CachedPlan:
        """Insert an optimized plan (and memoize its text)."""
        entry = CachedPlan(plan=plan, estimated_cost=estimated_cost,
                           canonical=canonical,
                           catalog_version=catalog_version,
                           model_name=model_name, reuse=reuse)
        key = (*canonical.key, catalog_version, model_name)
        with self._lock:
            self._sweep_stale_locked(catalog_version)
            self._memo_text_locked(text, model_name, canonical)
            self._plans[key] = entry
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._evictions.inc()
            return entry

    # -- maintenance ----------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached plan (text memos survive: parse output is
        catalog-independent)."""
        with self._lock:
            self._plans.clear()

    def stats(self) -> PlanCacheStats:
        with self._lock:
            families = {key[0] for key in self._plans}
            return PlanCacheStats(
                hits=self._hits.value, misses=self._misses.value,
                text_memo_hits=self._text_memo_hits.value,
                evictions=self._evictions.value,
                stale_evictions=self._stale_evictions.value,
                entries=len(self._plans), families=len(families))

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # -- internals ------------------------------------------------------
    def _memo_text_locked(self, text: str, model_name: str,
                          canonical: CanonicalQuery) -> None:
        self._texts[(text, model_name)] = canonical
        self._texts.move_to_end((text, model_name))
        while len(self._texts) > self.capacity:
            self._texts.popitem(last=False)

    def _sweep_stale_locked(self, version: int) -> None:
        """Drop entries keyed under versions older than ``version``.

        They can never hit again (the catalog version is monotonic), so
        letting them age out through the LRU would waste its budget.
        """
        if version <= self._newest_version:
            return
        self._newest_version = version
        stale = [key for key in self._plans if key[2] < version]
        for key in stale:
            del self._plans[key]
            self._stale_evictions.inc()
