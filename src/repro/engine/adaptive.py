"""Adaptive mid-query re-optimization (paper §VI).

"With increasingly difficult cost and cardinality estimation, fast
sampling ... or speculation techniques [29] can come in handy to provide
mechanisms for practical and adaptive query optimization and execution.
Late binding to the query requirements ... has become a standard."

The executor materializes the inputs of the plan's first pipeline breaker
(a semantic join — the operator whose physical choice is most sensitive to
cardinalities), compares *actual* input cardinalities against the
optimizer's estimates, and when they deviate beyond a factor, re-optimizes
the remaining plan against the materialized reality: the catalog now holds
exact statistics for the intermediates, so access-path selection
(blocked vs index) and join ordering re-run with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.logical import LogicalPlan, ScanNode, SemanticJoinNode
from repro.relational.physical import execute_plan
from repro.storage.table import Table


@dataclass
class AdaptiveReport:
    """What adaptive execution observed and decided."""

    checked_node: str | None = None
    estimated_inputs: tuple[float, float] | None = None
    actual_inputs: tuple[int, int] | None = None
    deviation: float = 1.0
    reoptimized: bool = False
    method_before: str | None = None
    method_after: str | None = None
    temp_tables: list[str] = field(default_factory=list)


class AdaptiveExecutor:
    """Executes plans with one re-optimization checkpoint."""

    def __init__(self, session, deviation_factor: float = 4.0):
        self.session = session
        self.deviation_factor = deviation_factor
        self._temp_counter = 0

    def execute(self, plan: LogicalPlan) -> tuple[Table, AdaptiveReport]:
        """Optimize, checkpoint at the first semantic join, maybe re-plan."""
        report = AdaptiveReport()
        optimized = self.session.optimize(plan)
        checkpoint = self._deepest_semantic_join(optimized)
        if checkpoint is None:
            return (self.session.execute(optimized, optimize=False), report)

        report.checked_node = checkpoint.label()
        report.method_before = checkpoint.hints.get("method")

        from repro.optimizer.cardinality import CardinalityEstimator

        estimator = CardinalityEstimator(self.session.catalog,
                                         self.session.models)
        estimated = (estimator.estimate(checkpoint.left),
                     estimator.estimate(checkpoint.right))
        report.estimated_inputs = estimated

        left_table = execute_plan(checkpoint.left, self.session.context)
        right_table = execute_plan(checkpoint.right, self.session.context)
        actual = (left_table.num_rows, right_table.num_rows)
        report.actual_inputs = actual
        report.deviation = max(
            _ratio(estimated[0], actual[0]),
            _ratio(estimated[1], actual[1]),
        )

        left_scan = self._materialize(left_table, report)
        right_scan = self._materialize(right_table, report)
        rebuilt = _replace_node(
            optimized, checkpoint,
            checkpoint.with_children((left_scan, right_scan)))

        try:
            if report.deviation > self.deviation_factor:
                report.reoptimized = True
                rebuilt = self.session.optimize(rebuilt)
            result = self.session.execute(rebuilt, optimize=False)
        finally:
            for name in report.temp_tables:
                self.session.catalog.drop(name)
        for node in rebuilt.walk():
            if isinstance(node, SemanticJoinNode):
                report.method_after = node.hints.get("method")
                break
        return result, report

    # ------------------------------------------------------------------
    def _deepest_semantic_join(
            self, plan: LogicalPlan) -> SemanticJoinNode | None:
        deepest: SemanticJoinNode | None = None

        def visit(node: LogicalPlan) -> None:
            nonlocal deepest
            for child in node.children:
                visit(child)
            if isinstance(node, SemanticJoinNode) and deepest is None:
                deepest = node

        visit(plan)
        return deepest

    def _materialize(self, table: Table, report: AdaptiveReport) -> ScanNode:
        name = f"__adaptive_{self._temp_counter}"
        self._temp_counter += 1
        self.session.catalog.register(name, table, replace=True)
        report.temp_tables.append(name)
        return ScanNode(name, table.schema)


def _ratio(estimated: float, actual: int) -> float:
    low = max(min(estimated, actual), 1.0)
    high = max(estimated, float(actual), 1.0)
    return high / low


def _replace_node(plan: LogicalPlan, target: LogicalPlan,
                  replacement: LogicalPlan) -> LogicalPlan:
    """Rebuild ``plan`` with ``target`` (by identity) swapped out."""
    if plan is target:
        return replacement
    new_children = tuple(_replace_node(child, target, replacement)
                         for child in plan.children)
    if all(new is old for new, old in zip(new_children, plan.children)):
        return plan
    return plan.with_children(new_children)
