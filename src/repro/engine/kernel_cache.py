"""Engine-wide cache of compiled pipeline kernels.

Compiling a fused pipeline (:func:`repro.hardware.jit.compile_pipeline`)
costs real wall time — source generation plus ``compile()``, plus numba
type-specialization when that backend is active.  The serving layer runs
many statements against the same schema, so the same pipeline shapes
recur constantly; this cache makes compilation a once-per-shape cost the
way the plan cache makes planning one.

Keys are ``(pipeline fingerprint, model, backend)``:

- *fingerprint* — :meth:`PipelineNode.fingerprint`, a structural digest
  over input column names, every fused expression, the trailing limit,
  and output names + dtypes.  A kernel is a pure function of plan
  structure, so — unlike plan-cache and result-cache entries — kernel
  entries need **no catalog-version or generation component**: inserts
  and replaces change data, not the generated code.  Schema changes
  produce a different fingerprint and therefore a fresh compile; the
  stale entry ages out of the LRU.  (``docs/serving.md`` contrasts the
  three invalidation regimes.)
- *model* — reserved for pipelines fused around semantic operators,
  whose kernels would specialize on the embedding model; purely
  relational pipelines use ``""``.
- *backend* — the **requested** backend (``auto``/``python``/``numba``),
  so an explicit-backend request never aliases an ``auto`` entry that
  resolved differently.

Thread-safe with single-flight compiles: when a miss storm hits one key,
exactly one thread compiles while the rest wait on a per-key event and
then hit the finished entry (pattern shared with
:class:`repro.semantic.index_cache.IndexCache`).  A failed compile never
wedges the key — one waiter is promoted to compiler and retries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.hardware.jit import PipelineKernel, PipelineSpec, compile_pipeline
from repro.obs.metrics import MetricsRegistry, hit_ratio

DEFAULT_KERNEL_CACHE_CAPACITY = 256

#: ``(pipeline fingerprint, model, requested backend)``.
_KernelKey = tuple[str, str, str]


class KernelCache:
    """LRU of :class:`PipelineKernel` with single-flight compilation."""

    #: Fixed edges for the compile-latency histogram: generated-source
    #: ``compile()`` lands in the sub-millisecond buckets, numba
    #: type-specialization in the 0.1–10 s tail.
    COMPILE_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)

    def __init__(self, capacity: int = DEFAULT_KERNEL_CACHE_CAPACITY,
                 registry: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("kernel cache capacity must be positive")
        self.capacity = capacity
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "kernel_cache_hits_total", help="compiled-kernel cache hits")
        self._misses = registry.counter(
            "kernel_cache_misses_total", help="compiled-kernel cache misses")
        self._compiles = registry.counter(
            "kernel_cache_compiles_total",
            help="actual compilations (one per distinct key)")
        self._single_flight_waits = registry.counter(
            "kernel_cache_single_flight_waits_total",
            help="misses coalesced onto another thread's compile")
        self._evictions = registry.counter(
            "kernel_cache_evictions_total", help="LRU evictions")
        self._compile_hist = registry.histogram(
            "kernel_compile_seconds", buckets=self.COMPILE_BUCKETS,
            help="wall seconds per compile_pipeline call")
        registry.gauge(
            "kernel_cache_entries", fn=lambda: len(self._entries),
            help="compiled kernels resident")
        registry.gauge(
            "kernel_cache_hit_ratio",
            fn=lambda: hit_ratio(self._hits.value, self._misses.value),
            help="hits / (hits + misses); 0.0 before any probe")
        self._entries: OrderedDict[_KernelKey, PipelineKernel] = OrderedDict()
        self._building: dict[_KernelKey, threading.Event] = {}
        self._lock = threading.Lock()

    # The pre-registry public counter attributes stay readable — tests
    # and benchmarks assert on them directly.
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def compiles(self) -> int:
        """Actual compilations (one per distinct key under any
        concurrency; a duplicate compile is a single-flight bug the
        stress tests assert against)."""
        return self._compiles.value

    @property
    def single_flight_waits(self) -> int:
        """Concurrent misses that coalesced onto another compile."""
        return self._single_flight_waits.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def compile_seconds(self) -> float:
        """Total wall seconds spent inside ``compile_pipeline``."""
        return self._compile_hist.sum

    def get_or_compile(self, fingerprint: str, spec: PipelineSpec,
                       model: str = "", backend: str = "auto",
                       ) -> tuple[PipelineKernel, bool]:
        """The compiled kernel for ``fingerprint``, compiling on miss.

        Returns ``(kernel, cache_hit)``; ``cache_hit`` is also True for
        threads that coalesced onto another thread's in-flight compile
        (they were served without compiling).
        """
        key = (fingerprint, model, backend)
        coalesced = False
        while True:
            with self._lock:
                kernel = self._entries.get(key)
                if kernel is not None:
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    return kernel, True
                event = self._building.get(key)
                if event is None:
                    # this thread compiles; racers wait on the event
                    event = threading.Event()
                    self._building[key] = event
                    self._misses.inc()
                    break
                if not coalesced:
                    coalesced = True
                    self._single_flight_waits.inc()
            event.wait()
            # compiler finished (or failed): re-check the entries; on
            # failure the first waiter through becomes the new compiler
        try:
            kernel = compile_pipeline(spec, backend=backend)
            with self._lock:
                self._entries[key] = kernel
                self._entries.move_to_end(key)
                self._compiles.inc()
                self._compile_hist.observe(kernel.compile_seconds)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions.inc()
            return kernel, False
        finally:
            with self._lock:
                del self._building[key]
            event.set()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits.reset()
            self._misses.reset()
            self._compiles.reset()
            self._single_flight_waits.reset()
            self._evictions.reset()
            self._compile_hist.reset()

    def stats(self) -> dict[str, int | float]:
        """Counters for ``server.metrics()["kernels"]`` (one snapshot)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "single_flight_waits": self.single_flight_waits,
                "evictions": self.evictions,
                "compile_seconds": self.compile_seconds,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
