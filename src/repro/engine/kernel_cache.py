"""Engine-wide cache of compiled pipeline kernels.

Compiling a fused pipeline (:func:`repro.hardware.jit.compile_pipeline`)
costs real wall time — source generation plus ``compile()``, plus numba
type-specialization when that backend is active.  The serving layer runs
many statements against the same schema, so the same pipeline shapes
recur constantly; this cache makes compilation a once-per-shape cost the
way the plan cache makes planning one.

Keys are ``(pipeline fingerprint, model, backend)``:

- *fingerprint* — :meth:`PipelineNode.fingerprint`, a structural digest
  over input column names, every fused expression, the trailing limit,
  and output names + dtypes.  A kernel is a pure function of plan
  structure, so — unlike plan-cache and result-cache entries — kernel
  entries need **no catalog-version or generation component**: inserts
  and replaces change data, not the generated code.  Schema changes
  produce a different fingerprint and therefore a fresh compile; the
  stale entry ages out of the LRU.  (``docs/serving.md`` contrasts the
  three invalidation regimes.)
- *model* — reserved for pipelines fused around semantic operators,
  whose kernels would specialize on the embedding model; purely
  relational pipelines use ``""``.
- *backend* — the **requested** backend (``auto``/``python``/``numba``),
  so an explicit-backend request never aliases an ``auto`` entry that
  resolved differently.

Thread-safe with single-flight compiles: when a miss storm hits one key,
exactly one thread compiles while the rest wait on a per-key event and
then hit the finished entry (pattern shared with
:class:`repro.semantic.index_cache.IndexCache`).  A failed compile never
wedges the key — one waiter is promoted to compiler and retries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.hardware.jit import PipelineKernel, PipelineSpec, compile_pipeline

DEFAULT_KERNEL_CACHE_CAPACITY = 256

#: ``(pipeline fingerprint, model, requested backend)``.
_KernelKey = tuple[str, str, str]


class KernelCache:
    """LRU of :class:`PipelineKernel` with single-flight compilation."""

    def __init__(self, capacity: int = DEFAULT_KERNEL_CACHE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("kernel cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Actual compilations (one per distinct key under any
        #: concurrency; a duplicate compile is a single-flight bug the
        #: stress tests assert against).
        self.compiles = 0
        #: Concurrent misses that coalesced onto another thread's compile.
        self.single_flight_waits = 0
        self.evictions = 0
        #: Total wall seconds spent inside ``compile_pipeline``.
        self.compile_seconds = 0.0
        self._entries: OrderedDict[_KernelKey, PipelineKernel] = OrderedDict()
        self._building: dict[_KernelKey, threading.Event] = {}
        self._lock = threading.Lock()

    def get_or_compile(self, fingerprint: str, spec: PipelineSpec,
                       model: str = "", backend: str = "auto",
                       ) -> tuple[PipelineKernel, bool]:
        """The compiled kernel for ``fingerprint``, compiling on miss.

        Returns ``(kernel, cache_hit)``; ``cache_hit`` is also True for
        threads that coalesced onto another thread's in-flight compile
        (they were served without compiling).
        """
        key = (fingerprint, model, backend)
        coalesced = False
        while True:
            with self._lock:
                kernel = self._entries.get(key)
                if kernel is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return kernel, True
                event = self._building.get(key)
                if event is None:
                    # this thread compiles; racers wait on the event
                    event = threading.Event()
                    self._building[key] = event
                    self.misses += 1
                    break
                if not coalesced:
                    coalesced = True
                    self.single_flight_waits += 1
            event.wait()
            # compiler finished (or failed): re-check the entries; on
            # failure the first waiter through becomes the new compiler
        try:
            kernel = compile_pipeline(spec, backend=backend)
            with self._lock:
                self._entries[key] = kernel
                self._entries.move_to_end(key)
                self.compiles += 1
                self.compile_seconds += kernel.compile_seconds
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            return kernel, False
        finally:
            with self._lock:
                del self._building[key]
            event.set()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.compiles = 0
            self.single_flight_waits = 0
            self.evictions = 0
            self.compile_seconds = 0.0

    def stats(self) -> dict[str, int | float]:
        """Counters for ``server.metrics()["kernels"]`` (one snapshot)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "single_flight_waits": self.single_flight_waits,
                "evictions": self.evictions,
                "compile_seconds": self.compile_seconds,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
