"""Recursive-descent parser for the SQL dialect."""

from __future__ import annotations

from repro.engine.sql import ast
from repro.engine.sql.lexer import AGGREGATE_NAMES, Lexer, Token, TokenType
from repro.errors import ParseError

DEFAULT_THRESHOLD = 0.9


def parse_sql(text: str) -> ast.SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse()


class Parser:
    def __init__(self, text: str):
        self.tokens = Lexer(text).tokens()
        self.position = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.position += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()}, found {self.current.text!r}",
                self.current.position)
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        if not (self.current.type == TokenType.PUNCT
                and self.current.text == char):
            raise ParseError(f"expected {char!r}, found "
                             f"{self.current.text!r}", self.current.position)
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        if self.current.type == TokenType.PUNCT and self.current.text == char:
            self._advance()
            return True
        return False

    def _accept_operator(self, text: str) -> bool:
        if (self.current.type == TokenType.OPERATOR
                and self.current.text == text):
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------
    def parse(self) -> ast.SelectStatement:
        statement = self._select_statement()
        if self.current.type != TokenType.EOF:
            raise ParseError(f"unexpected trailing input "
                             f"{self.current.text!r}", self.current.position)
        return statement

    def _select_statement(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        items = self._select_items()
        statement = ast.SelectStatement(items=items)
        if self._accept_keyword("from"):
            statement.base = self._table_ref()
            statement.joins = self._joins()
        if self._accept_keyword("where"):
            statement.where = self._expression()
        self._group_by(statement)
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            statement.order_by = self._order_items()
        if self._accept_keyword("limit"):
            statement.limit = self._integer()
        return statement

    def _select_items(self) -> list[ast.SelectItem]:
        if self._accept_punct("*"):
            return []
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        expr = self._expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._identifier()
        elif self.current.type == TokenType.IDENT:
            alias = self._identifier()
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._dotted_name()
        alias = None
        if self._accept_keyword("as"):
            alias = self._identifier()
        elif self.current.type == TokenType.IDENT:
            alias = self._identifier()
        return ast.TableRef(name, alias)

    def _joins(self) -> list[ast.JoinClause]:
        joins: list[ast.JoinClause] = []
        while True:
            if self._accept_keyword("semantic"):
                if self.current.is_keyword("join"):
                    self._advance()
                    joins.append(self._semantic_join())
                    continue
                # SEMANTIC GROUP BY handled by caller: rewind
                self.position -= 1
                break
            kind = None
            if self._accept_keyword("inner"):
                kind = "inner"
                self._expect_keyword("join")
            elif self._accept_keyword("left"):
                kind = "left"
                self._expect_keyword("join")
            elif self._accept_keyword("cross"):
                kind = "cross"
                self._expect_keyword("join")
            elif self._accept_keyword("join"):
                kind = "inner"
            if kind is None:
                break
            table = self._table_ref()
            left_keys: list[ast.ColumnName] = []
            right_keys: list[ast.ColumnName] = []
            if kind != "cross":
                self._expect_keyword("on")
                left_keys, right_keys = self._equi_condition()
            joins.append(ast.JoinClause(kind, table,
                                        tuple(left_keys),
                                        tuple(right_keys)))
        return joins

    def _semantic_join(self) -> ast.JoinClause:
        table = self._table_ref()
        self._expect_keyword("on")
        left = self._column_name()
        if not self._accept_operator("~"):
            raise ParseError("semantic join condition must use '~'",
                             self.current.position)
        right = self._column_name()
        model, threshold = self._model_threshold()
        top_k = None
        if self._accept_keyword("top"):
            top_k = self._integer()
        return ast.JoinClause("semantic", table, (left,), (right,),
                              model=model, threshold=threshold,
                              top_k=top_k)

    def _equi_condition(self) -> tuple[list[ast.ColumnName],
                                       list[ast.ColumnName]]:
        left_keys = []
        right_keys = []
        while True:
            left = self._column_name()
            if not self._accept_operator("="):
                raise ParseError("join condition must be equality",
                                 self.current.position)
            right = self._column_name()
            left_keys.append(left)
            right_keys.append(right)
            if not self._accept_keyword("and"):
                return left_keys, right_keys

    def _group_by(self, statement: ast.SelectStatement) -> None:
        if self._accept_keyword("semantic"):
            self._expect_keyword("group")
            self._expect_keyword("by")
            column = self._column_name()
            model, threshold = self._model_threshold()
            statement.semantic_group_by = ast.SemanticGroupBy(
                column, model, threshold)
            return
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            statement.group_by = [self._column_name()]
            while self._accept_punct(","):
                statement.group_by.append(self._column_name())

    def _model_threshold(self) -> tuple[str | None, float]:
        model = None
        threshold = DEFAULT_THRESHOLD
        while True:
            if self._accept_keyword("using"):
                self._expect_keyword("model")
                model = self._string_value()
            elif self._accept_keyword("threshold"):
                if self.current.type == TokenType.OPERATOR and \
                        self.current.text in (">=", "="):
                    self._advance()
                threshold = self._number_value()
            else:
                return model, threshold

    def _order_items(self) -> list[ast.OrderItem]:
        items = [self._order_item()]
        while self._accept_punct(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        column = self._column_name()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        elif self._accept_keyword("asc"):
            ascending = True
        return ast.OrderItem(column, ascending)

    # -- expressions -------------------------------------------------------
    def _expression(self) -> ast.SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.SqlExpr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BoolOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.SqlExpr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BoolOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.SqlExpr:
        if self._accept_keyword("not"):
            return ast.NotOp(self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.SqlExpr:
        left = self._additive()
        if self.current.type == TokenType.OPERATOR and \
                self.current.text in ("~", "~*"):
            mode = "contains" if self.current.text == "~*" else "value"
            self._advance()
            if not isinstance(left, ast.ColumnName):
                raise ParseError("semantic predicate needs a column on the "
                                 "left of '~'", self.current.position)
            if self.current.type != TokenType.STRING:
                raise ParseError("semantic predicate needs a string probe",
                                 self.current.position)
            probe = self._advance().text
            model, threshold = self._model_threshold()
            return ast.SemanticPredicate(left, probe, model, threshold,
                                         mode)
        if self.current.type == TokenType.OPERATOR and self.current.text in (
                "=", "!=", "<", "<=", ">", ">="):
            op = self._advance().text
            right = self._additive()
            return ast.Comparison(op, left, right)
        if self._accept_keyword("in"):
            self._expect_punct("(")
            values = [self._literal()]
            while self._accept_punct(","):
                values.append(self._literal())
            self._expect_punct(")")
            return ast.InListExpr(left, tuple(values))
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.BoolOp("and",
                              ast.Comparison(">=", left, low),
                              ast.Comparison("<=", left, high))
        return left

    def _additive(self) -> ast.SqlExpr:
        left = self._multiplicative()
        while (self.current.type == TokenType.PUNCT
               and self.current.text in "+-"):
            op = self._advance().text
            left = ast.BinaryArith(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.SqlExpr:
        left = self._primary()
        while True:
            if self.current.type == TokenType.PUNCT and \
                    self.current.text == "*":
                # '*' is also SELECT-star / COUNT(*); here it is arithmetic
                self._advance()
                left = ast.BinaryArith("*", left, self._primary())
            elif self.current.type == TokenType.PUNCT and \
                    self.current.text == "/":
                self._advance()
                left = ast.BinaryArith("/", left, self._primary())
            else:
                return left

    def _primary(self) -> ast.SqlExpr:
        token = self.current
        if token.type == TokenType.PUNCT and token.text == "-":
            self._advance()
            operand = self._primary()
            if isinstance(operand, ast.NumberLit):
                return ast.NumberLit(-operand.value, operand.is_integer)
            return ast.BinaryArith("-", ast.NumberLit(0.0, True), operand)
        if token.type == TokenType.PUNCT and token.text == "(":
            self._advance()
            inner = self._expression()
            self._expect_punct(")")
            return inner
        if token.type == TokenType.NUMBER:
            return self._literal()
        if token.type == TokenType.STRING:
            return self._literal()
        if token.is_keyword("date"):
            return self._literal()
        if token.type == TokenType.IDENT:
            lowered = token.text.lower()
            if lowered in AGGREGATE_NAMES and self._peek_is_open_paren():
                return self._aggregate_call(lowered)
            if self._peek_is_open_paren():
                return self._function_call(token.text.lower())
            return self._column_name()
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _aggregate_call(self, name: str) -> ast.FuncCall:
        self._advance()  # function name
        self._expect_punct("(")
        if self._accept_punct("*"):
            self._expect_punct(")")
            return ast.FuncCall(name, (), star=True)
        distinct = self._accept_keyword("distinct")
        arg = self._expression()
        self._expect_punct(")")
        return ast.FuncCall(name, (arg,), distinct=distinct)

    def _function_call(self, name: str) -> ast.FuncCall:
        self._advance()
        self._expect_punct("(")
        args = []
        if not self._accept_punct(")"):
            args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
            self._expect_punct(")")
        return ast.FuncCall(name, tuple(args))

    def _peek_is_open_paren(self) -> bool:
        nxt = self.tokens[self.position + 1]
        return nxt.type == TokenType.PUNCT and nxt.text == "("

    # -- terminals ----------------------------------------------------------
    def _literal(self) -> ast.SqlExpr:
        token = self.current
        if token.type == TokenType.NUMBER:
            self._advance()
            is_integer = "." not in token.text
            return ast.NumberLit(float(token.text), is_integer)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.StringLit(token.text)
        if token.is_keyword("date"):
            self._advance()
            if self.current.type != TokenType.STRING:
                raise ParseError("DATE must be followed by an ISO string",
                                 self.current.position)
            return ast.DateLit(self._advance().text)
        raise ParseError(f"expected literal, found {token.text!r}",
                         token.position)

    def _column_name(self) -> ast.ColumnName:
        parts = [self._identifier()]
        while self._accept_punct("."):
            parts.append(self._identifier())
        return ast.ColumnName(tuple(parts))

    def _dotted_name(self) -> str:
        parts = [self._identifier()]
        while self._accept_punct("."):
            parts.append(self._identifier())
        return ".".join(parts)

    def _identifier(self) -> str:
        token = self.current
        if token.type != TokenType.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}",
                             token.position)
        self._advance()
        return token.text

    def _integer(self) -> int:
        token = self.current
        if token.type != TokenType.NUMBER or "." in token.text:
            raise ParseError(f"expected integer, found {token.text!r}",
                             token.position)
        self._advance()
        return int(token.text)

    def _number_value(self) -> float:
        token = self.current
        if token.type != TokenType.NUMBER:
            raise ParseError(f"expected number, found {token.text!r}",
                             token.position)
        self._advance()
        return float(token.text)

    def _string_value(self) -> str:
        token = self.current
        if token.type != TokenType.STRING:
            raise ParseError(f"expected string, found {token.text!r}",
                             token.position)
        self._advance()
        return token.text
