"""Canonical form + digest of a parsed SQL statement (plan-cache keys).

The serving layer's plan cache must recognise a repeated statement no
matter how the client spelled it: extra whitespace, keyword case, or
redundant formatting all lex away, so two texts that parse to the same
AST must map to one cache entry.  This module renders a parsed
:class:`~repro.engine.sql.ast.SelectStatement` into a deterministic
**canonical template** in which every literal is replaced by a typed
placeholder (``?int``, ``?float``, ``?str``, ``?date``), plus the tuple
of extracted literal values in template order.

Why literals are *parameterized out* of the template but kept in the
full cache key: the template digest groups statements into **families**
("same shape, different constants"), but the cached plan itself is
keyed on the concrete parameter tuple as well — a different constant
legitimately changes selectivity estimates, and with them the
optimizer's join order and access-path choices, so per-literal
("custom") plans are the default, mirroring mainstream engines.  A
family only graduates to a shared **generic plan** after the plan
cache has *observed* that several distinct literal tuples all optimize
to the same literal-masked plan fingerprint — and even then rechecks
and demotion guard the assumption (see
:mod:`repro.engine.plan_cache` and ``docs/optimizer.md``).  Families
whose plans embed DIP-derived predicates never qualify.

The digest is BLAKE2b over the template text: collision-resistant, and
stable across processes (no reliance on Python's randomized ``hash``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.engine.sql import ast


@dataclass(frozen=True)
class CanonicalQuery:
    """A statement's canonical template, literal values, and digest."""

    #: Deterministic rendering with typed literal placeholders.
    template: str
    #: Extracted literal values, in template placeholder order.
    parameters: tuple
    #: BLAKE2b hex digest of ``template`` — the statement-family key.
    digest: str

    @property
    def key(self) -> tuple:
        """Exact-statement identity: family digest + concrete literals."""
        return (self.digest, self.parameters)


def canonicalize(statement: ast.SelectStatement) -> CanonicalQuery:
    """Render ``statement`` to its canonical template + parameters."""
    parameters: list = []
    template = _statement(statement, parameters)
    digest = hashlib.blake2b(template.encode("utf-8"),
                             digest_size=16).hexdigest()
    return CanonicalQuery(template=template, parameters=tuple(parameters),
                          digest=digest)


# ---------------------------------------------------------------------------
# statement rendering
# ---------------------------------------------------------------------------
def _statement(s: ast.SelectStatement, out: list) -> str:
    parts = ["select"]
    if s.items:
        parts.append(", ".join(_select_item(item, out) for item in s.items))
    else:
        parts.append("*")
    if s.base is not None:
        parts.append("from " + _table_ref(s.base))
    for join in s.joins:
        parts.append(_join(join, out))
    if s.where is not None:
        parts.append("where " + _expr(s.where, out))
    if s.group_by:
        parts.append("group by "
                     + ", ".join(c.dotted for c in s.group_by))
    if s.semantic_group_by is not None:
        g = s.semantic_group_by
        out.append(g.threshold)
        parts.append(f"semantic group by {g.column.dotted}"
                     f" model {g.model or '<default>'} threshold ?float")
    if s.order_by:
        parts.append("order by " + ", ".join(
            f"{o.column.dotted} {'asc' if o.ascending else 'desc'}"
            for o in s.order_by))
    if s.limit is not None:
        out.append(s.limit)
        parts.append("limit ?int")
    return " ".join(parts)


def _select_item(item: ast.SelectItem, out: list) -> str:
    rendered = _expr(item.expr, out)
    if item.alias:
        rendered += f" as {item.alias}"
    return rendered


def _table_ref(ref: ast.TableRef) -> str:
    if ref.alias:
        return f"{ref.name} as {ref.alias}"
    return ref.name


def _join(join: ast.JoinClause, out: list) -> str:
    parts = [f"{join.kind} join", _table_ref(join.table)]
    if join.left_keys:
        pairs = ", ".join(
            f"{l.dotted} = {r.dotted}"
            for l, r in zip(join.left_keys, join.right_keys))
        parts.append("on " + pairs)
    if join.kind == "semantic":
        out.append(join.threshold)
        parts.append(f"model {join.model or '<default>'} threshold ?float")
        if join.top_k is not None:
            out.append(join.top_k)
            parts.append("top ?int")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# expression rendering
# ---------------------------------------------------------------------------
def _expr(node: ast.SqlExpr, out: list) -> str:
    if isinstance(node, ast.ColumnName):
        return node.dotted
    if isinstance(node, ast.NumberLit):
        out.append(node.value)
        return "?int" if node.is_integer else "?float"
    if isinstance(node, ast.StringLit):
        out.append(node.value)
        return "?str"
    if isinstance(node, ast.DateLit):
        out.append(node.iso)
        return "?date"
    if isinstance(node, ast.BoolOp):
        return (f"({_expr(node.left, out)} {node.op} "
                f"{_expr(node.right, out)})")
    if isinstance(node, ast.NotOp):
        return f"(not {_expr(node.operand, out)})"
    if isinstance(node, ast.Comparison):
        return (f"({_expr(node.left, out)} {node.op} "
                f"{_expr(node.right, out)})")
    if isinstance(node, ast.BinaryArith):
        return (f"({_expr(node.left, out)} {node.op} "
                f"{_expr(node.right, out)})")
    if isinstance(node, ast.InListExpr):
        values = ", ".join(_expr(v, out) for v in node.values)
        return f"({_expr(node.operand, out)} in ({values}))"
    if isinstance(node, ast.FuncCall):
        if node.star:
            inner = "*"
        else:
            inner = ", ".join(_expr(a, out) for a in node.args)
            if node.distinct:
                inner = "distinct " + inner
        return f"{node.name}({inner})"
    if isinstance(node, ast.SemanticPredicate):
        out.append(node.probe)
        out.append(node.threshold)
        return (f"({node.column.dotted} ~[{node.mode}] ?str"
                f" model {node.model or '<default>'} threshold ?float)")
    raise TypeError(f"cannot canonicalize {type(node).__name__}")
