"""Tokenizer for the SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "as", "join", "semantic",
    "on", "using", "model", "threshold", "group", "by", "order", "limit",
    "in", "desc", "asc", "date", "distinct", "union", "all", "left", "inner",
    "cross", "between", "like", "top",
}

AGGREGATE_NAMES = {"count", "sum", "min", "max", "avg"}


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.text == word


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "~*", "~")
_PUNCT = "(),.*+-/"


class Lexer:
    """Hand-written tokenizer (positions preserved for error messages)."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next()
            out.append(token)
            if token.type == TokenType.EOF:
                return out

    # ------------------------------------------------------------------
    def _next(self) -> Token:
        self._skip_whitespace()
        if self.position >= len(self.text):
            return Token(TokenType.EOF, "", self.position)
        start = self.position
        char = self.text[self.position]
        if char == "'":
            return self._string(start)
        if char.isdigit() or (char == "." and self._peek_digit()):
            return self._number(start)
        if char.isalpha() or char == "_":
            return self._word(start)
        for operator in _OPERATORS:
            if self.text.startswith(operator, self.position):
                self.position += len(operator)
                text = "!=" if operator == "<>" else operator
                return Token(TokenType.OPERATOR, text, start)
        if char in _PUNCT:
            self.position += 1
            return Token(TokenType.PUNCT, char, start)
        raise ParseError(f"unexpected character {char!r}", start)

    def _skip_whitespace(self) -> None:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isspace():
                self.position += 1
            elif self.text.startswith("--", self.position):
                newline = self.text.find("\n", self.position)
                self.position = len(self.text) if newline < 0 else newline
            else:
                return

    def _string(self, start: int) -> Token:
        self.position += 1
        chunks: list[str] = []
        while self.position < len(self.text):
            char = self.text[self.position]
            if char == "'":
                if self.text.startswith("''", self.position):
                    chunks.append("'")
                    self.position += 2
                    continue
                self.position += 1
                return Token(TokenType.STRING, "".join(chunks), start)
            chunks.append(char)
            self.position += 1
        raise ParseError("unterminated string literal", start)

    def _number(self, start: int) -> Token:
        while self.position < len(self.text) and (
                self.text[self.position].isdigit()
                or self.text[self.position] == "."):
            self.position += 1
        return Token(TokenType.NUMBER, self.text[start:self.position], start)

    def _word(self, start: int) -> Token:
        while self.position < len(self.text) and (
                self.text[self.position].isalnum()
                or self.text[self.position] == "_"):
            self.position += 1
        text = self.text[start:self.position]
        lowered = text.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start)
        return Token(TokenType.IDENT, text, start)

    def _peek_digit(self) -> bool:
        return (self.position + 1 < len(self.text)
                and self.text[self.position + 1].isdigit())
