"""Binder: SQL AST -> logical plan against a catalog.

Name resolution is deliberately forgiving (unambiguous suffixes resolve,
matching the schema's ``index_of``), and every resolution failure raises
:class:`~repro.errors.BindError` at bind time rather than run time.
"""

from __future__ import annotations

from repro.engine.sql import ast
from repro.errors import BindError
from repro.relational.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticGroupByNode,
    SemanticJoinNode,
    SortNode,
)
from repro.storage.catalog import Catalog
from repro.storage.types import parse_date

_AGG_FUNCS = {
    "count": AggFunc.COUNT,
    "sum": AggFunc.SUM,
    "min": AggFunc.MIN,
    "max": AggFunc.MAX,
    "avg": AggFunc.AVG,
}

_JOIN_KINDS = {
    "inner": JoinType.INNER,
    "left": JoinType.LEFT,
    "cross": JoinType.CROSS,
}


class Binder:
    """Binds one SELECT statement to a logical plan."""

    def __init__(self, catalog: Catalog, default_model: str):
        self.catalog = catalog
        self.default_model = default_model

    def bind(self, statement: ast.SelectStatement) -> LogicalPlan:
        if statement.base is None:
            raise BindError("queries must have a FROM clause")
        plan = self._scan(statement.base)
        for join in statement.joins:
            plan = self._join(plan, join)
        if statement.where is not None:
            plan = self._where(plan, statement.where)
        plan, projected = self._grouping(plan, statement)
        if statement.order_by:
            keys = [(item.column.dotted, item.ascending)
                    for item in statement.order_by]
            for key, _ in keys:
                self._check_column(plan, key)
            plan = SortNode(plan, keys)
        if statement.limit is not None:
            plan = LimitNode(plan, statement.limit)
        if not projected and statement.items:
            plan = self._project(plan, statement.items)
        return plan

    # ------------------------------------------------------------------
    def _scan(self, ref: ast.TableRef) -> ScanNode:
        if ref.name not in self.catalog:
            raise BindError(
                f"unknown table {ref.name!r}; registered: "
                f"{self.catalog.names()}"
            )
        schema = self.catalog.get(ref.name).schema
        return ScanNode(ref.name, schema, qualifier=ref.alias)

    def _join(self, left: LogicalPlan, join: ast.JoinClause) -> LogicalPlan:
        right = self._scan(join.table)
        if join.kind == "semantic":
            left_column = join.left_keys[0].dotted
            right_column = join.right_keys[0].dotted
            left_col, right_col = self._orient(left, right, left_column,
                                               right_column,
                                               "semantic join condition")
            alias = "similarity"
            counter = 2
            while alias in left.schema or alias in right.schema:
                alias = f"similarity_{counter}"
                counter += 1
            return SemanticJoinNode(
                left, right, left_col, right_col,
                join.model or self.default_model, join.threshold,
                score_alias=alias, top_k=join.top_k)
        left_keys = []
        right_keys = []
        for key_a, key_b in zip(join.left_keys, join.right_keys):
            left_key, right_key = self._orient(left, right, key_a.dotted,
                                               key_b.dotted,
                                               "join condition")
            left_keys.append(left_key)
            right_keys.append(right_key)
        return JoinNode(left, right, _JOIN_KINDS[join.kind], left_keys,
                        right_keys)

    def _orient(self, left: LogicalPlan, right: LogicalPlan, a: str, b: str,
                what: str) -> tuple[str, str]:
        """Figure out which key belongs to which input."""
        if self._resolves(left, a) and self._resolves(right, b):
            return a, b
        if self._resolves(left, b) and self._resolves(right, a):
            return b, a
        raise BindError(
            f"cannot resolve {what}: {a!r} / {b!r} against the join inputs"
        )

    def _where(self, plan: LogicalPlan, where: ast.SqlExpr) -> LogicalPlan:
        relational, semantic = _split_semantic_conjuncts(where)
        if relational is not None:
            plan = FilterNode(plan, self._expr(relational, plan))
        for predicate in semantic:
            column = predicate.column.dotted
            self._check_column(plan, column)
            plan = SemanticFilterNode(
                plan, column, predicate.probe,
                predicate.model or self.default_model, predicate.threshold,
                mode=predicate.mode)
        return plan

    def _grouping(self, plan: LogicalPlan,
                  statement: ast.SelectStatement) -> tuple[LogicalPlan, bool]:
        if statement.semantic_group_by is not None:
            sgb = statement.semantic_group_by
            column = sgb.column.dotted
            self._check_column(plan, column)
            plan = SemanticGroupByNode(plan, column,
                                       sgb.model or self.default_model,
                                       sgb.threshold)
            if _has_aggregates(statement.items):
                return self._aggregate(plan, ["cluster_rep"],
                                       statement.items), True
            return plan, False
        if statement.group_by or _has_aggregates(statement.items):
            keys = [c.dotted for c in statement.group_by]
            for key in keys:
                self._check_column(plan, key)
            return self._aggregate(plan, keys, statement.items), True
        return plan, False

    def _aggregate(self, plan: LogicalPlan, keys: list[str],
                   items: list[ast.SelectItem]) -> LogicalPlan:
        aggregates: list[AggExpr] = []
        if not items:
            raise BindError("aggregate queries cannot use SELECT *")
        for index, item in enumerate(items):
            expr = item.expr
            if isinstance(expr, ast.FuncCall) and expr.name in _AGG_FUNCS:
                aggregates.append(self._agg_expr(expr, plan, item.alias,
                                                 index))
            elif isinstance(expr, ast.ColumnName):
                resolved = self._check_column(plan, expr.dotted)
                if resolved not in keys and expr.dotted not in keys:
                    raise BindError(
                        f"column {expr.dotted!r} must appear in GROUP BY "
                        "or inside an aggregate"
                    )
            else:
                raise BindError(
                    "grouped SELECT items must be key columns or aggregates"
                )
        return AggregateNode(plan, keys, aggregates)

    def _agg_expr(self, call: ast.FuncCall, plan: LogicalPlan,
                  alias: str | None, index: int) -> AggExpr:
        func = _AGG_FUNCS[call.name]
        name = alias or f"{call.name}_{index}"
        if call.star:
            return AggExpr(AggFunc.COUNT, None, name)
        if call.distinct:
            if func != AggFunc.COUNT:
                raise BindError("DISTINCT is supported only inside COUNT")
            func = AggFunc.COUNT_DISTINCT
        operand = self._expr(call.args[0], plan)
        return AggExpr(func, operand, name)

    def _project(self, plan: LogicalPlan,
                 items: list[ast.SelectItem]) -> LogicalPlan:
        exprs: list[tuple[Expr, str]] = []
        for index, item in enumerate(items):
            if isinstance(item.expr, ast.FuncCall) and \
                    item.expr.name in _AGG_FUNCS:
                # aggregate outputs already materialized by _aggregate;
                # reference them by alias
                name = item.alias or f"{item.expr.name}_{index}"
                exprs.append((ColumnRef(name), name))
                continue
            expr = self._expr(item.expr, plan)
            alias = item.alias or _default_alias(item.expr, index)
            exprs.append((expr, alias))
        return ProjectNode(plan, exprs)

    # ------------------------------------------------------------------
    def _expr(self, node: ast.SqlExpr, plan: LogicalPlan) -> Expr:
        if isinstance(node, ast.ColumnName):
            self._check_column(plan, node.dotted)
            return ColumnRef(node.dotted)
        if isinstance(node, ast.NumberLit):
            value = int(node.value) if node.is_integer else node.value
            return Literal(value)
        if isinstance(node, ast.StringLit):
            return Literal(node.value)
        if isinstance(node, ast.DateLit):
            return Literal(parse_date(node.iso))
        if isinstance(node, ast.Comparison):
            return Compare(node.op, self._expr(node.left, plan),
                           self._expr(node.right, plan))
        if isinstance(node, ast.BoolOp):
            combiner = And if node.op == "and" else Or
            return combiner(self._expr(node.left, plan),
                            self._expr(node.right, plan))
        if isinstance(node, ast.NotOp):
            return Not(self._expr(node.operand, plan))
        if isinstance(node, ast.BinaryArith):
            return Arith(node.op, self._expr(node.left, plan),
                         self._expr(node.right, plan))
        if isinstance(node, ast.InListExpr):
            values = []
            for value in node.values:
                literal = self._expr(value, plan)
                if not isinstance(literal, Literal):
                    raise BindError("IN lists must contain literals")
                values.append(literal.value)
            return InList(self._expr(node.operand, plan), values)
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_FUNCS:
                raise BindError(
                    f"aggregate {node.name!r} is not allowed here"
                )
            args = tuple(self._expr(a, plan) for a in node.args)
            return Func(node.name, args)
        if isinstance(node, ast.SemanticPredicate):
            raise BindError(
                "semantic predicates must be top-level WHERE conjuncts"
            )
        raise BindError(f"cannot bind expression {node!r}")

    def _check_column(self, plan: LogicalPlan, name: str) -> str:
        try:
            index = plan.schema.index_of(name)
        except Exception as exc:
            raise BindError(str(exc)) from exc
        return plan.schema.names[index]

    @staticmethod
    def _resolves(plan: LogicalPlan, name: str) -> bool:
        try:
            plan.schema.index_of(name)
            return True
        except Exception:
            return False


def _has_aggregates(items: list[ast.SelectItem]) -> bool:
    return any(
        isinstance(item.expr, ast.FuncCall) and item.expr.name in _AGG_FUNCS
        for item in items
    )


def _split_semantic_conjuncts(
    where: ast.SqlExpr,
) -> tuple[ast.SqlExpr | None, list[ast.SemanticPredicate]]:
    """Separate top-level semantic predicates from the relational rest."""
    relational: list[ast.SqlExpr] = []
    semantic: list[ast.SemanticPredicate] = []

    def visit(node: ast.SqlExpr) -> None:
        if isinstance(node, ast.BoolOp) and node.op == "and":
            visit(node.left)
            visit(node.right)
            return
        if isinstance(node, ast.SemanticPredicate):
            semantic.append(node)
            return
        if _contains_semantic(node):
            raise BindError(
                "semantic predicates may only appear as AND-ed "
                "top-level WHERE conditions"
            )
        relational.append(node)

    visit(where)
    combined: ast.SqlExpr | None = None
    for part in relational:
        combined = part if combined is None else ast.BoolOp("and", combined,
                                                            part)
    return combined, semantic


def _contains_semantic(node: ast.SqlExpr) -> bool:
    if isinstance(node, ast.SemanticPredicate):
        return True
    for attribute in ("left", "right", "operand"):
        child = getattr(node, attribute, None)
        if isinstance(child, ast.SqlExpr) and _contains_semantic(child):
            return True
    return False


def _default_alias(expr: ast.SqlExpr, index: int) -> str:
    if isinstance(expr, ast.ColumnName):
        return expr.dotted
    return f"col_{index}"
