"""The SQL dialect with semantic-operator extensions (paper §IV).

The paper proposes three operator extensions; the dialect surfaces them
as::

    SELECT p.name, k.object AS category
    FROM products AS p
    SEMANTIC JOIN kb.category AS k
        ON p.ptype ~ k.subject USING MODEL 'wiki-ft-100' THRESHOLD 0.9
    WHERE p.price > 20
      AND p.ptype ~ 'clothes' USING MODEL 'wiki-ft-100' THRESHOLD 0.7

    SELECT cluster_rep, COUNT(*) AS n
    FROM logs
    SEMANTIC GROUP BY message THRESHOLD 0.8

"SQL may not be the best or the only way to represent such query plans"
(§IV) — the dataframe-style :class:`~repro.engine.builder.QueryBuilder`
compiles to the same plan IR.
"""

from repro.engine.sql.lexer import Lexer, Token, TokenType
from repro.engine.sql.parser import Parser, parse_sql
from repro.engine.sql.binder import Binder

__all__ = ["Lexer", "Token", "TokenType", "Parser", "parse_sql", "Binder"]
