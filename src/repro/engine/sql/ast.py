"""Abstract syntax tree for the SQL dialect (parser output, binder input)."""

from __future__ import annotations

from dataclasses import dataclass, field


# --- expressions -------------------------------------------------------
class SqlExpr:
    """Base class for parsed scalar/boolean expressions."""


@dataclass(frozen=True)
class ColumnName(SqlExpr):
    parts: tuple[str, ...]  # ("p", "price") for p.price

    @property
    def dotted(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    value: float
    is_integer: bool


@dataclass(frozen=True)
class StringLit(SqlExpr):
    value: str


@dataclass(frozen=True)
class DateLit(SqlExpr):
    iso: str


@dataclass(frozen=True)
class BoolOp(SqlExpr):
    op: str  # "and" | "or"
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class NotOp(SqlExpr):
    operand: SqlExpr


@dataclass(frozen=True)
class Comparison(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class BinaryArith(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class InListExpr(SqlExpr):
    operand: SqlExpr
    values: tuple[SqlExpr, ...]


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    name: str
    args: tuple[SqlExpr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class SemanticPredicate(SqlExpr):
    """``column ~ 'probe' [USING MODEL 'name'] [THRESHOLD x]``.

    The ``~*`` operator sets ``mode="contains"`` (any token of free text
    matches the probe) instead of embedding the whole cell.
    """

    column: ColumnName
    probe: str
    model: str | None
    threshold: float
    mode: str = "value"


# --- statement structure ----------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: str | None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None


@dataclass(frozen=True)
class JoinClause:
    kind: str  # "inner" | "left" | "cross" | "semantic"
    table: TableRef
    # equi joins: key equalities; semantic join: single ~ pair
    left_keys: tuple[ColumnName, ...] = ()
    right_keys: tuple[ColumnName, ...] = ()
    model: str | None = None
    threshold: float = 0.9
    top_k: int | None = None  # SEMANTIC JOIN ... TOP k


@dataclass(frozen=True)
class SemanticGroupBy:
    column: ColumnName
    model: str | None
    threshold: float


@dataclass(frozen=True)
class OrderItem:
    column: ColumnName
    ascending: bool


@dataclass
class SelectStatement:
    items: list[SelectItem]          # empty list means SELECT *
    base: TableRef | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: SqlExpr | None = None
    group_by: list[ColumnName] = field(default_factory=list)
    semantic_group_by: SemanticGroupBy | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
