"""Engine facade: sessions, the query builder, SQL, EXPLAIN, profiling."""

from repro.engine.builder import QueryBuilder
from repro.engine.explain import explain_plan
from repro.engine.profiler import OperatorProfile, QueryProfile
from repro.engine.session import DEFAULT_MODEL_NAME, Session

__all__ = [
    "QueryBuilder",
    "explain_plan",
    "OperatorProfile",
    "QueryProfile",
    "DEFAULT_MODEL_NAME",
    "Session",
]
