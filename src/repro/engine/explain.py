"""EXPLAIN: annotated plan rendering with estimates and costs."""

from __future__ import annotations

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.relational.logical import LogicalPlan
from repro.relational.pipeline import PipelineNode


def explain_plan(plan: LogicalPlan,
                 estimator: CardinalityEstimator | None = None,
                 cost_model: CostModel | None = None) -> str:
    """Human-readable plan with per-node row/cost estimates.

    Fused pipelines render their stages as indented ``·`` pseudo-children
    so the pre-fusion operator chain stays visible in EXPLAIN output.
    """
    lines: list[str] = []

    def visit(node: LogicalPlan, indent: int) -> None:
        annotation = ""
        if estimator is not None:
            rows = estimator.estimate(node)
            annotation += f"  [rows~{rows:,.0f}"
            if cost_model is not None:
                cost = cost_model.node_cost(node)
                annotation += f", cost~{cost.total:,.0f}"
            annotation += "]"
        lines.append("  " * indent + node.label() + annotation)
        if isinstance(node, PipelineNode):
            for stage in reversed(node.stages):   # outermost first,
                lines.append("  " * (indent + 1)  # like plan rendering
                             + "· " + stage.label())
        for child in node.children:
            visit(child, indent + 1)

    visit(plan, 0)
    return "\n".join(lines)


def pipeline_annotation(physical) -> str:
    """EXPLAIN ANALYZE suffix for a compiled pipeline operator.

    Says which backend the kernel ran on and whether this execution hit
    the kernel cache or paid the compile.
    """
    from repro.relational.physical import FusedPipelineOp

    if not isinstance(physical, FusedPipelineOp):
        return ""
    if physical.cache_hit:
        return f"  {{compiled backend={physical.backend}, kernel cache hit}}"
    return (f"  {{compiled backend={physical.backend}, "
            f"compiled in {physical.compile_seconds * 1e3:.2f} ms}}")
