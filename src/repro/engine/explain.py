"""EXPLAIN: annotated plan rendering with estimates and costs."""

from __future__ import annotations

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.relational.logical import LogicalPlan


def explain_plan(plan: LogicalPlan,
                 estimator: CardinalityEstimator | None = None,
                 cost_model: CostModel | None = None) -> str:
    """Human-readable plan with per-node row/cost estimates."""
    lines: list[str] = []

    def visit(node: LogicalPlan, indent: int) -> None:
        annotation = ""
        if estimator is not None:
            rows = estimator.estimate(node)
            annotation += f"  [rows~{rows:,.0f}"
            if cost_model is not None:
                cost = cost_model.node_cost(node)
                annotation += f", cost~{cost.total:,.0f}"
            annotation += "]"
        lines.append("  " * indent + node.label() + annotation)
        for child in node.children:
            visit(child, indent + 1)

    visit(plan, 0)
    return "\n".join(lines)
