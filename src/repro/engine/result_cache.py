"""Cross-statement result cache: repeated statements skip execution.

The plan cache (PR 3) made a repeated statement skip the frontend —
lexer, parser, binder, optimizer — but every hit still re-executed the
full operator tree, so the expensive part of a repeated semantic join
was paid on every repetition.  This cache closes that gap: a statement
whose **canonical identity and inputs** are unchanged returns a
defensive snapshot of the previous result and executes nothing.

Key structure (:class:`ResultKey`) — everything a result is a pure
function of:

- **canonical digest + literal tuple** — the statement's identity under
  :mod:`repro.engine.sql.canonical`: whitespace, keyword case, and
  formatting differences share one entry; a different literal is a
  different result and misses;
- **catalog version** — the same signal the plan cache keys on: any
  ``register_table``/``drop``/statistics refresh bumps it, so results
  computed over old contents simply stop matching;
- **default model name** — unqualified semantic operators bind through
  it, exactly as in the plan-cache key;
- **arena generations** — one ``(model, generation)`` pair per model
  the plan embeds with.  ``EngineServer.invalidate_model`` (or any
  ``EmbeddingCache.clear``) refreshes the generation token, so results
  that involved a since-invalidated model never serve again — the
  signal a model *replacement* needs, which the catalog version cannot
  see;
- **index-cache generation** — bumped by ``IndexCache.clear()``, same
  discipline;
- **table data versions** — one ``(table, data_version)`` pair per
  table the plan scans.  Appends/upserts bump only this dimension
  (``docs/ingest.md``), so a row mutation invalidates — or lets the
  ingest subsystem delta-patch — exactly the entries that read the
  mutated table, while every other entry keeps serving.

Invalidation is **versioned and lazy**, mirroring
:mod:`repro.engine.plan_cache`: nothing is evicted at mutation time;
stale entries stop matching immediately (their key embeds the old
version/generation) and are swept out of the byte budget the next time
a put observes a newer version or a retired arena generation.

**Snapshot semantics.**  The cache never shares array storage with
callers in either direction: ``put`` stores a deep column-copy of the
result, and ``get`` returns a fresh deep copy per hit.  A caller that
mutates a returned table (or the original result it handed in) can
therefore never poison later hits — the regression tests mutate a hit
in place and re-fetch.

**Budgeting** is by *estimated result bytes*, not entry count: results
range from one aggregate row to a large join, so an LRU over counts
would let a handful of giant results squat.  An entry larger than the
whole budget is not cached at all (``oversize_skips``).

Generation capture discipline: the key is built **before** execution
(at lookup time) and the same key is used for the post-execution
``put``.  An invalidation that lands mid-execution therefore leaves the
entry stored under the *pre*-invalidation generation, where it can
never match a later lookup — the same "captured before, aged out after"
pattern ``plan_for`` uses for mid-flight statistics bumps.  The cost is
one extra miss for the first statement that lazily creates a model's
arena (its pre-execution key carries the ``-1`` "no arena yet" sentinel
and is refused dead-on-arrival); the second execution stores under the
live generation and the third hits, analogous to the two-pass
statistics warm-up.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from repro.obs.metrics import MetricsRegistry, hit_ratio
from repro.semantic.cache import RETIRED_GENERATIONS
from repro.storage.table import Table

#: Default byte budget for cached result snapshots (64 MiB).
DEFAULT_RESULT_CACHE_BYTES = 64 * 1024 * 1024

#: Estimated Python-object overhead per cached string element.
_OBJECT_OVERHEAD = 56

#: Object columns longer than this are size-estimated from a strided
#: sample instead of a full pass — measuring every string of a large
#: result cost more than the residual/store work around it.
_ESTIMATE_SAMPLE = 512


class ResultKey(NamedTuple):
    """Everything a statement's result is a pure function of."""

    #: Canonical-template digest (statement family).
    digest: str
    #: Concrete literal tuple, in template order.
    parameters: tuple[object, ...]
    #: Catalog version the statement was planned under.
    catalog_version: int
    #: Default model name the statement was bound with.
    model_name: str
    #: ``IndexCache.generation`` at key-build time.
    index_generation: int
    #: Sorted ``(model, EmbeddingCache.generation)`` per plan model;
    #: ``-1`` marks a model whose arena does not exist yet.
    arena_generations: tuple[tuple[str, int], ...]
    #: Sorted ``(table, Catalog.data_version)`` per table the plan
    #: scans.  Appends/upserts bump only this dimension — not the
    #: catalog version — so the ingest subsystem can invalidate (or
    #: delta-patch) exactly the entries that read the mutated table
    #: while everything else keeps serving.  Defaults to ``()`` for
    #: callers outside the ingest-aware key builder.
    table_versions: tuple[tuple[str, int], ...] = ()


def estimate_table_bytes(table: Table) -> int:
    """Estimated resident bytes of a table's column arrays.

    Numeric columns are exact (``nbytes``); object columns add a
    per-element overhead plus the string payload, which is close enough
    for budget enforcement — the budget bounds memory growth, it is not
    an allocator.  Large object columns extrapolate the payload from a
    deterministic strided sample: a full per-string pass over a big
    result cost more than the snapshot copy it was budgeting.
    """
    total = 0
    for arr in table.columns.values():
        if arr.dtype == object:
            n = int(arr.shape[0])
            total += n * _OBJECT_OVERHEAD
            if n <= _ESTIMATE_SAMPLE:
                total += sum(len(str(value)) for value in arr)
            else:
                sample = arr[::max(1, n // _ESTIMATE_SAMPLE)]
                sampled = sum(len(str(value)) for value in sample)
                total += int(sampled * (n / sample.shape[0]))
        else:
            total += int(arr.nbytes)
    return total


def snapshot_table(table: Table) -> Table:
    """A deep column-copy sharing no array storage with ``table``.

    Element objects (strings) are shared — they are immutable — but
    every ndarray buffer is fresh, so in-place mutation of either side
    cannot reach the other.
    """
    return Table(table.schema,
                 {name: arr.copy() for name, arr in table.columns.items()})


def strip_columns(table: Table, names: tuple[str, ...]) -> Table:
    """``table`` without the ``names`` columns (arrays shared, not
    copied — callers copy when they need isolation)."""
    if not names:
        return table
    drop = set(names)
    from repro.storage.schema import Schema

    fields = [field_ for field_ in table.schema.fields
              if field_.name not in drop]
    return Table(Schema(fields),
                 {field_.name: table.columns[field_.name]
                  for field_ in fields})


@dataclass
class CachedResult:
    """One cached result snapshot plus its accounting.

    ``aux_names`` lists reuse-internal columns embedded in ``table``
    (per-row semantic scores / top-k ranks): :meth:`ResultCache.get`
    strips them from every exact hit, while the subsumption path reads
    the full snapshot through :meth:`ResultCache.get_full`.
    """

    table: Table          # private snapshot; never handed out directly
    nbytes: int
    aux_names: tuple[str, ...] = ()
    hits: int = 0


@dataclass
class ResultCacheStats:
    """Counters the benchmarks and server metrics read."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    stale_evictions: int = 0
    invalidations: int = 0
    oversize_skips: int = 0
    reuse_fetches: int = 0
    entries: int = 0
    bytes: int = 0
    max_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return hit_ratio(self.hits, self.misses)

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "puts": self.puts,
            "evictions": self.evictions,
            "stale_evictions": self.stale_evictions,
            "invalidations": self.invalidations,
            "oversize_skips": self.oversize_skips,
            "reuse_fetches": self.reuse_fetches,
            "entries": self.entries,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
        }


class ResultCache:
    """Byte-budgeted LRU of result snapshots keyed by :class:`ResultKey`.

    Thread-safe: one leaf mutex guards the store and counters; snapshot
    copies happen outside the lock (a :class:`CachedResult`'s table is
    immutable once stored, so a concurrent eviction only drops the dict
    reference, never the data a hit is copying).
    """

    def __init__(self, max_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
                 registry: MetricsRegistry | None = None) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._store: OrderedDict[ResultKey, CachedResult] = OrderedDict()
        self._bytes = 0
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "result_cache_hits_total", help="exact result-snapshot hits")
        self._misses = registry.counter(
            "result_cache_misses_total", help="exact result-snapshot misses")
        self._puts = registry.counter(
            "result_cache_puts_total", help="snapshots stored")
        self._evictions = registry.counter(
            "result_cache_evictions_total", help="byte-budget LRU evictions")
        self._stale_evictions = registry.counter(
            "result_cache_stale_evictions_total",
            help="version/generation-dead entries swept")
        self._invalidations = registry.counter(
            "result_cache_invalidations_total",
            help="entries dropped by explicit invalidate()")
        self._oversize_skips = registry.counter(
            "result_cache_oversize_skips_total",
            help="results larger than the whole byte budget, not cached")
        self._reuse_fetches = registry.counter(
            "result_cache_reuse_fetches_total",
            help="full-snapshot reads by the subsumption path")
        registry.gauge("result_cache_entries", fn=lambda: len(self._store),
                       help="cached result snapshots resident")
        registry.gauge("result_cache_bytes", fn=lambda: self._bytes,
                       help="estimated resident snapshot bytes")
        registry.gauge(
            "result_cache_hit_ratio",
            fn=lambda: hit_ratio(self._hits.value, self._misses.value),
            help="exact hits / probes; 0.0 before any probe")
        self._newest_version = -1
        self._newest_index_generation = -1
        #: per-table data_version watermark (ingest bumps)
        self._newest_table_versions: dict[str, int] = {}
        # size of RETIRED_GENERATIONS at the last sweep: the set only
        # grows, so an unchanged size means no new retirements to scan
        self._retired_seen = 0

    # -- lookups --------------------------------------------------------
    def get(self, key: ResultKey) -> Table | None:
        """A fresh snapshot of the cached result for ``key``, or ``None``.

        Every hit returns its own copy: mutating it cannot poison the
        cache or any other caller's hit.  Reuse aux columns embedded in
        the stored snapshot are stripped — callers see exactly what
        unaugmented execution would have produced.
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._hits.inc()
            entry.hits += 1
            self._store.move_to_end(key)
        return snapshot_table(strip_columns(entry.table, entry.aux_names))

    def get_full(self, key: ResultKey) -> tuple[Table, tuple[str, ...]] | None:
        """The raw stored snapshot (aux columns included) plus its aux
        names — the subsumption path's read.

        Counted separately from exact hits/misses (``reuse_fetches``)
        so hit-rate telemetry keeps meaning "exact repeats".  The
        returned table is the *internal* snapshot: it is immutable once
        stored, and the residual executor only builds fresh arrays from
        it, never mutates it.
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                return None
            self._reuse_fetches.inc()
            self._store.move_to_end(key)
            return entry.table, entry.aux_names

    # -- population -----------------------------------------------------
    def put(self, key: ResultKey, table: Table,
            aux_names: tuple[str, ...] = (), owned: bool = False) -> bool:
        """Store a snapshot of ``table`` under ``key``.

        Returns ``False`` (and caches nothing) when the key is already
        dead on arrival — below the observed version/generation
        watermark or carrying the ``-1`` sentinel, e.g. an invalidation
        landed while the query ran — so a never-matchable entry cannot
        evict live ones, or when the result alone exceeds the byte
        budget.  The gates run cheapest-first: the key-only refusal
        costs no table scan, and the byte estimate runs before the
        defensive copy, so no rejected put pays a memcpy.  Storing
        sweeps entries that can never match again, then evicts LRU
        entries until the budget holds.

        ``owned=True`` transfers ownership of ``table``'s freshly
        allocated arrays to the cache instead of snapshotting them —
        the residual executor's path, whose output shares storage with
        nothing.  The caller must hand out no other reference.
        """
        with self._lock:
            self._sweep_stale_locked(key)
            if self._dead_on_arrival_locked(key):
                return False
        nbytes = estimate_table_bytes(table)
        if nbytes > self.max_bytes:
            with self._lock:
                self._oversize_skips.inc()
            return False
        snapshot = table if owned else snapshot_table(table)
        with self._lock:
            # re-check: the watermark may have advanced while copying
            if self._dead_on_arrival_locked(key):
                return False
            previous = self._store.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._store[key] = CachedResult(table=snapshot, nbytes=nbytes,
                                            aux_names=tuple(aux_names))
            self._bytes += nbytes
            self._puts.inc()
            while self._bytes > self.max_bytes:
                _, evicted = self._store.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions.inc()
            return True

    # -- maintenance ----------------------------------------------------
    def advance_table_version(self, name: str, data_version: int) -> int:
        """Raise the per-table data_version watermark and sweep.

        The ingest subsystem's targeted invalidation: every entry whose
        key reads ``name`` at a version below ``data_version`` can never
        match again (probe keys now carry the new version) and is
        dropped immediately instead of squatting in the byte budget
        until the next lazy sweep.  Entries that never read ``name`` are
        untouched — the precision that blanket catalog-version bumps
        cannot offer.  Returns the number of entries dropped.
        """
        with self._lock:
            if data_version <= self._newest_table_versions.get(name, -1):
                return 0
            self._newest_table_versions[name] = data_version
            return self._drop_dead_locked()

    def entries_for_table(self, name: str) -> list[
            tuple[ResultKey, Table, tuple[str, ...]]]:
        """Live entries whose key reads table ``name`` — the delta
        maintainer's scan.

        Returns the *internal* snapshots (immutable once stored, like
        :meth:`get_full`); callers build fresh patched tables from them
        and must never mutate them.
        """
        with self._lock:
            return [(key, entry.table, entry.aux_names)
                    for key, entry in self._store.items()
                    if any(table == name
                           for table, _ in key.table_versions)]

    def invalidate(self) -> int:
        """Drop every cached result; returns the number dropped."""
        with self._lock:
            dropped = len(self._store)
            self._store.clear()
            self._bytes = 0
            self._invalidations.inc(dropped)
            return dropped

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits.value, misses=self._misses.value,
                puts=self._puts.value,
                evictions=self._evictions.value,
                stale_evictions=self._stale_evictions.value,
                invalidations=self._invalidations.value,
                oversize_skips=self._oversize_skips.value,
                reuse_fetches=self._reuse_fetches.value,
                entries=len(self._store), bytes=self._bytes,
                max_bytes=self.max_bytes)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    # -- internals ------------------------------------------------------
    def _dead_on_arrival_locked(self, key: ResultKey) -> bool:
        """True when ``key`` can never match a future lookup: it sits
        below the version/generation watermark (an invalidation landed
        while the query ran), references a retired arena, or carries the
        ``-1`` "no arena yet" sentinel (the arena was created during the
        very execution that produced this result, so every later lookup
        carries the real generation)."""
        return (key.catalog_version < self._newest_version
                or key.index_generation < self._newest_index_generation
                or any(generation == -1 or generation in RETIRED_GENERATIONS
                       for _, generation in key.arena_generations)
                or any(version < self._newest_table_versions.get(name, -1)
                       for name, version in key.table_versions))

    def _sweep_stale_locked(self, key: ResultKey) -> None:
        """Drop entries that can never hit again.

        Catalog versions and index-cache generations are monotonic, so
        anything below the newest observed value is dead; an arena
        generation in :data:`RETIRED_GENERATIONS` (cleared or collected
        cache) is dead regardless of ordering.
        """
        advanced = False
        if key.catalog_version > self._newest_version:
            self._newest_version = key.catalog_version
            advanced = True
        if key.index_generation > self._newest_index_generation:
            self._newest_index_generation = key.index_generation
            advanced = True
        for name, version in key.table_versions:
            if version > self._newest_table_versions.get(name, -1):
                self._newest_table_versions[name] = version
                advanced = True
        if len(RETIRED_GENERATIONS) != self._retired_seen:
            self._retired_seen = len(RETIRED_GENERATIONS)
            advanced = True
        if not advanced:
            return
        self._drop_dead_locked()

    def _drop_dead_locked(self) -> int:
        stale = [stored for stored in self._store
                 if self._dead_on_arrival_locked(stored)]
        for stored in stale:
            entry = self._store.pop(stored)
            self._bytes -= entry.nbytes
            self._stale_evictions.inc()
        return len(stale)
