"""The engine session: catalog + models + optimizer + executor in one place.

A session is what the paper's "single declarative framework" looks like to
a user: register tables/sources/models once, then issue SQL or builder
queries; the session optimizes, executes, and profiles them.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.embeddings.model import EmbeddingModel
from repro.embeddings.registry import ModelRegistry
from repro.engine.explain import explain_plan
from repro.engine.profiler import QueryProfile
from repro.engine.sql.binder import Binder
from repro.engine.sql.parser import parse_sql
from repro.errors import CatalogError
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.polystore.federation import Federation
from repro.polystore.source import DataSource
from repro.relational.logical import LogicalPlan, ScanNode
from repro.relational.physical import (
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    build_physical,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.parallel import resolve_workers

DEFAULT_MODEL_NAME = "wiki-ft-100"


class Session:
    """A query session over registered tables, sources, and models.

    ``parallelism`` is the session-wide worker count for thread-pooled
    kernels (the parallel semantic join and the batch subword/segment-sum
    path); ``None`` (the default) derives it from the CPUs visible to the
    process, clamped.  The optimizer's cost model is given the same
    number, so its parallel-vs-blocked decisions reflect the machine the
    query actually runs on.
    """

    def __init__(self, seed: int = 7, load_default_model: bool = True,
                 optimizer_config: OptimizerConfig | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int | None = None):
        self.catalog = Catalog()
        self.models = ModelRegistry()
        self.federation = Federation(self.catalog)
        workers = resolve_workers(parallelism)
        self.context = ExecutionContext(
            catalog=self.catalog, models=self.models, batch_size=batch_size,
            parallelism=workers)
        # The session owns one arena-backed embedding cache per model:
        # embeddings (like vector indexes) persist across queries, so a
        # string embedded by any query is a hit for every later one.
        self.context.embedding_cache = {}
        config = optimizer_config or OptimizerConfig()
        if config.cost_params.workers is None:
            # cost the parallel access path with the real worker count;
            # an explicitly set CostParams.workers keeps its tuning.
            # Copied, never mutated in place: a config shared across
            # sessions must not freeze the first session's worker count
            # into later ones.
            config = replace(config, cost_params=replace(
                config.cost_params, workers=workers))
        self.optimizer_config = config
        self.default_model_name = DEFAULT_MODEL_NAME
        self.last_profile: QueryProfile | None = None
        if load_default_model:
            from repro.embeddings.pretrained import build_pretrained_model

            self.register_model(build_pretrained_model(seed=seed))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       replace: bool = False) -> None:
        """Register a materialized table under ``name``."""
        self.catalog.register(name, table, replace=replace)

    def register_source(self, source: DataSource) -> list[str]:
        """Federate a polystore source; returns the registered table names."""
        self.federation.add_source(source)
        return self.federation.registered_tables(source.name)

    def register_model(self, model: EmbeddingModel,
                       default: bool = False) -> None:
        """Register an embedding model (optionally as the session default).

        The session's batch embeds run with its ``parallelism`` setting,
        threaded per call through the session-owned embedding cache —
        the model object itself is never mutated, so sharing one model
        across sessions with different settings is safe.
        """
        self.models.register(model)
        if default:
            self.default_model_name = model.name

    def embedding_cache(self, model_name: str | None = None):
        """The session's arena cache for ``model_name`` (default model if
        omitted), creating it on first use.  Embeddings interned here are
        shared by every query the session executes."""
        from repro.semantic.lowering import cache_for

        return cache_for(self.context, model_name or self.default_model_name)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def table(self, name: str, alias: str | None = None):
        """Start a builder query from a registered table."""
        from repro.engine.builder import QueryBuilder

        if name not in self.catalog:
            raise CatalogError(
                f"unknown table {name!r}; registered: {self.catalog.names()}"
            )
        scan = ScanNode(name, self.catalog.get(name).schema, qualifier=alias)
        return QueryBuilder(self, scan)

    def sql(self, text: str, optimize: bool = True) -> Table:
        """Parse, bind, optimize, and execute a SQL query."""
        return self.execute(self.sql_plan(text), optimize=optimize)

    def sql_plan(self, text: str) -> LogicalPlan:
        """Parse and bind a SQL query to an (unoptimized) logical plan."""
        statement = parse_sql(text)
        binder = Binder(self.catalog, self.default_model_name)
        return binder.bind(statement)

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        optimizer = Optimizer(self.catalog, self.models,
                              config=self.optimizer_config,
                              execution_context=self.context)
        return optimizer.optimize(plan)

    def execute(self, plan: LogicalPlan, optimize: bool = True) -> Table:
        """Run a logical plan; stores a :class:`QueryProfile`."""
        if optimize:
            plan = self.optimize(plan)
        started = time.perf_counter()
        root = build_physical(plan, self.context)
        result = root.execute()
        elapsed = time.perf_counter() - started
        self.context.record_semantic_metrics()
        self.last_profile = QueryProfile.from_tree(
            root, elapsed, self.context.embedding_cache)
        return result

    def explain(self, query: str | LogicalPlan,
                optimize: bool = True) -> str:
        """EXPLAIN a SQL string or a logical plan."""
        plan = self.sql_plan(query) if isinstance(query, str) else query
        optimizer = Optimizer(self.catalog, self.models,
                              config=self.optimizer_config,
                              execution_context=self.context)
        if optimize:
            plan = optimizer.optimize(plan)
        return explain_plan(plan, optimizer.estimator, optimizer.cost_model)

    def explain_analyze(self, query: str | LogicalPlan,
                        optimize: bool = True) -> str:
        """EXPLAIN ANALYZE: run the query and show estimated vs actual
        rows and wall time per operator.

        The estimated/actual gap is the cardinality feedback the paper's
        adaptive execution (§VI) acts on — here surfaced for the user.
        """
        plan = self.sql_plan(query) if isinstance(query, str) else query
        optimizer = Optimizer(self.catalog, self.models,
                              config=self.optimizer_config,
                              execution_context=self.context)
        if optimize:
            plan = optimizer.optimize(plan)

        root = build_physical(plan, self.context)
        started = time.perf_counter()
        root.execute()
        elapsed = time.perf_counter() - started

        lines = [f"EXPLAIN ANALYZE  (total {elapsed * 1e3:.2f} ms)"]

        def visit(logical: LogicalPlan, physical, indent: int) -> None:
            estimated = optimizer.estimator.estimate(logical)
            actual = physical.rows_out
            drift = ""
            if estimated > 0 and actual > 0:
                ratio = max(estimated / actual, actual / estimated)
                if ratio >= 4.0:
                    drift = f"  <-- estimate off {ratio:.0f}x"
            lines.append(
                "  " * indent
                + f"{logical.label()}  [est~{estimated:,.0f} rows, "
                  f"actual {actual:,} rows, "
                  f"{physical.elapsed * 1e3:.2f} ms]{drift}")
            for logical_child, physical_child in zip(logical.children,
                                                     physical.children):
                visit(logical_child, physical_child, indent + 1)

        visit(plan, root, 1)
        return "\n".join(lines)
