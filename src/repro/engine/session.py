"""The engine session: catalog + models + optimizer + executor in one place.

A session is what the paper's "single declarative framework" looks like to
a user: register tables/sources/models once, then issue SQL or builder
queries; the session optimizes, executes, and profiles them.

Since the serving layer landed, ``Session`` is a thin facade over an
:class:`~repro.engine.state.EngineState`: a stand-alone session builds a
private state (exactly the old behaviour), while sessions handed a
``shared_state`` — the :class:`~repro.server.EngineServer` path — share
catalog, models, embedding arenas, the vector-index cache, and the plan
cache with every sibling.  SQL execution consults the plan cache first:
a repeated statement (same canonical form + literals, same catalog
version, same default model) skips lexer/parser/binder/optimizer and
goes straight to physical instantiation of the cached plan.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import NamedTuple

from repro.embeddings.model import EmbeddingModel
from repro.engine.explain import explain_plan, pipeline_annotation
from repro.engine.profiler import QueryProfile
from repro.engine.sql.binder import Binder
from repro.engine.sql.canonical import CanonicalQuery, canonicalize
from repro.engine.sql.parser import parse_sql
from repro.engine.state import DEFAULT_MODEL_NAME, EngineState, plan_models
from repro.errors import CatalogError
from repro.obs.trace import (
    NULL_TRACE, AnyTrace, Trace, attach_operator_spans,
    attach_profile_spans)
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.polystore.source import DataSource
from repro.relational.logical import LogicalPlan, ScanNode
from repro.relational.physical import DEFAULT_BATCH_SIZE, build_physical
from repro.storage.table import Table

__all__ = ["DEFAULT_MODEL_NAME", "PlannedStatement", "Session"]


class PlannedStatement(NamedTuple):
    """An optimized plan plus the serving metadata around it."""

    plan: LogicalPlan
    #: True when the plan came from the shared plan cache.
    cache_hit: bool
    #: The optimizer's total cost estimate — free on a hit (stored in
    #: the cache entry), and what the scheduler's admission classifier
    #: keys on.
    estimated_cost: float
    #: Canonical form of the statement (digest + literal tuple) — the
    #: result cache keys on it.  ``None`` on the uncacheable path (no
    #: plan cache, or a facade with a diverged optimizer config).
    canonical: CanonicalQuery | None = None
    #: Catalog version the statement was planned under (captured before
    #: binding, like the plan cache's key).
    catalog_version: int = -1
    #: Default model name the statement was bound with.
    model_name: str = ""
    #: Reuse spec (:class:`repro.reuse.analysis.ReuseSpec`) when the
    #: statement went through subsumption analysis; its plan then
    #: carries the reuse aux columns, which ``EngineState.store_result``
    #: strips before results reach callers.  ``None`` on paths that
    #: never consult the reuse registry.
    reuse: object | None = None


class Session:
    """A query session over registered tables, sources, and models.

    ``parallelism`` is the session-wide worker count for thread-pooled
    kernels (the parallel semantic join and the batch subword/segment-sum
    path); ``None`` (the default) derives it from the CPUs visible to the
    process, clamped.  The optimizer's cost model is given the same
    number, so its parallel-vs-blocked decisions reflect the machine the
    query actually runs on.

    ``result_cache_bytes`` budgets the cross-statement result cache
    (``None`` = default 64 MiB, ``0`` disables it so every statement
    executes).  ``semantic_reuse`` toggles the subsumption subsystem
    (answering refined statements residually from cached
    super-results); it rides on result-cache snapshots, so disabling
    the result cache disables it too.

    ``compiled_pipelines`` controls the fused-kernel execution tier:
    ``"auto"`` (default) lets the cost model decide when a chain is
    worth compiling, ``"on"`` compiles every eligible chain, ``"off"``
    keeps everything interpreted.

    ``shared_state`` plugs the session into an existing
    :class:`~repro.engine.state.EngineState` (the server path).  When it
    is given, ``seed``/``load_default_model``/``optimizer_config``/
    ``result_cache_bytes`` are ignored — that state was configured by
    its owner.
    """

    def __init__(self, seed: int = 7, load_default_model: bool = True,
                 optimizer_config: OptimizerConfig | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int | None = None,
                 shared_state: EngineState | None = None,
                 result_cache_bytes: int | None = None,
                 semantic_reuse: bool = True,
                 compiled_pipelines: str | None = None,
                 generic_plans: bool = True):
        if shared_state is None:
            shared_state = EngineState(
                seed=seed, load_default_model=load_default_model,
                optimizer_config=optimizer_config, batch_size=batch_size,
                parallelism=parallelism,
                result_cache_bytes=result_cache_bytes,
                semantic_reuse=semantic_reuse,
                compiled_pipelines=compiled_pipelines,
                generic_plans=generic_plans)
        self.state = shared_state
        # shared references, not copies: mutating through any facade is
        # visible to every session over the same state
        self.catalog = shared_state.catalog
        self.models = shared_state.models
        self.federation = shared_state.federation
        self.optimizer_config = shared_state.optimizer_config
        self.context = shared_state.make_context(
            parallelism=parallelism, batch_size=batch_size)
        # no override yet: default_model_name tracks the shared state
        # until this session picks its own (register_model(default=True))
        self._default_model_override: str | None = None
        self.last_profile: QueryProfile | None = None

    @property
    def default_model_name(self) -> str:
        """The model unqualified semantic operators bind to.

        Tracks the shared state's default — so
        ``EngineServer.register_model(default=True)`` reaches every
        existing client session — unless this session set its own
        (assignment or ``register_model(default=True)``), which is a
        session-local override, like a search path.
        """
        return self._default_model_override or self.state.default_model_name

    @default_model_name.setter
    def default_model_name(self, name: str) -> None:
        self._default_model_override = name

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       replace: bool = False) -> None:
        """Register a materialized table under ``name``.

        Bumps the catalog version, which invalidates every cached plan
        (they are keyed on the version, so they simply stop matching).
        """
        self.catalog.register(name, table, replace=replace)

    def append(self, name: str, rows):
        """Append rows (dicts or a same-schema :class:`Table`) to
        ``name``; returns the :class:`~repro.ingest.IngestReport`.

        Unlike ``register_table(replace=True)`` — a schema-identity
        change that invalidates every cache engine-wide — an append
        bumps only the table's per-row ``data_version``: plans stay
        cached, and results over the table are delta-patched when the
        plan is provably append-monotone (:mod:`repro.ingest`).
        """
        return self.state.ingest.append(name, rows)

    def upsert(self, name: str, rows, key: str):
        """Insert-or-replace rows by the ``key`` column; returns the
        :class:`~repro.ingest.IngestReport`.

        Pure inserts take the delta-maintenance append path; any key
        collision falls back to targeted invalidation of this table's
        cached results (see :meth:`repro.ingest.IngestManager.upsert`).
        """
        return self.state.ingest.upsert(name, rows, key)

    def register_source(self, source: DataSource) -> list[str]:
        """Federate a polystore source; returns the registered table names."""
        self.federation.add_source(source)
        return self.federation.registered_tables(source.name)

    def register_model(self, model: EmbeddingModel,
                       default: bool = False) -> None:
        """Register an embedding model (optionally as the session default).

        The session's batch embeds run with its ``parallelism`` setting,
        threaded per call through the session-owned embedding cache —
        the model object itself is never mutated, so sharing one model
        across sessions with different settings is safe.
        """
        self.models.register(model)
        if default:
            self.default_model_name = model.name

    def embedding_cache(self, model_name: str | None = None):
        """The session's arena cache for ``model_name`` (default model if
        omitted), creating it on first use.  Embeddings interned here are
        shared by every query the session executes."""
        from repro.semantic.lowering import cache_for

        return cache_for(self.context, model_name or self.default_model_name)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def table(self, name: str, alias: str | None = None):
        """Start a builder query from a registered table."""
        from repro.engine.builder import QueryBuilder

        if name not in self.catalog:
            raise CatalogError(
                f"unknown table {name!r}; registered: {self.catalog.names()}"
            )
        scan = ScanNode(name, self.catalog.get(name).schema, qualifier=alias)
        return QueryBuilder(self, scan)

    def sql(self, text: str, optimize: bool = True) -> Table:
        """Parse, bind, optimize, and execute a SQL query.

        Optimized statements go through the shared plan cache: on a hit
        the text is at most memo-probed (byte-identical repeats skip
        even the lexer) and the cached physical-annotated plan executes
        directly.  A repeated statement whose result-cache key still
        matches (same canonical form + literals, catalog version, and
        model/arena/index generations) skips execution entirely and
        returns a defensive snapshot of the cached result.
        ``optimize=False`` always takes the uncached, unscheduled path.
        """
        if not optimize:
            return self.execute(self.sql_plan(text), optimize=False)
        # inline sample check: with tracing disabled the whole statement
        # pays one attribute load + branch here instead of a start() call
        # (the result-cache hit path is ~tens of microseconds, so even
        # no-op method calls would show up against the <1% budget)
        tracer = self.state.tracer
        trace: AnyTrace = tracer.start("statement") \
            if tracer.sample > 0.0 else NULL_TRACE
        self.state.statements_total.inc()
        planned = self.plan_for(text, trace=trace)
        key = self.state.result_key(planned)   # captured pre-execution
        started = time.perf_counter()
        if trace.enabled:
            with trace.span("result_cache.probe") as probe:
                cached = self.state.fetch_result(key)
                probe.annotate(hit=cached is not None,
                               cacheable=key is not None)
        else:
            cached = self.state.fetch_result(key)
        if cached is not None:
            profile = QueryProfile(
                total_seconds=time.perf_counter() - started)
            profile.plan_cache_hit = planned.cache_hit
            profile.result_cache_hit = True
            if trace.enabled:
                self._finish_statement(trace, profile)
            self.last_profile = profile
            return cached
        with trace.span("reuse.probe") as probe:
            reused = self.state.fetch_reuse(planned, key)
            probe.annotate(hit=reused is not None)
        if reused is not None:
            profile = QueryProfile(
                total_seconds=time.perf_counter() - started)
            profile.plan_cache_hit = planned.cache_hit
            profile.result_cache_hit = False
            profile.reuse_hit = True
            if trace.enabled:
                self._finish_statement(trace, profile)
            self.last_profile = profile
            return reused
        result = self.execute(planned.plan, optimize=False, trace=trace)
        result = self.state.store_result(key, result, planned)
        if self.last_profile is not None:
            self.last_profile.plan_cache_hit = planned.cache_hit
            if key is not None:
                self.last_profile.result_cache_hit = False
                self.last_profile.reuse_hit = False
            if trace.enabled:
                self._finish_statement(trace, self.last_profile)
        return result

    def _finish_statement(self, trace: AnyTrace,
                          profile: QueryProfile) -> None:
        """Seal a statement's trace and pin it to the profile."""
        trace.annotate(
            plan_cache_hit=profile.plan_cache_hit,
            result_cache_hit=profile.result_cache_hit,
            reuse_hit=profile.reuse_hit)
        # root seconds = sum of child spans (parse + probes + execute),
        # which covers the whole statement regardless of which path
        # served it
        self.state.tracer.finish(trace)
        if trace.enabled:
            profile.trace = trace

    def sql_plan(self, text: str) -> LogicalPlan:
        """Parse and bind a SQL query to an (unoptimized) logical plan."""
        statement = parse_sql(text)
        binder = Binder(self.catalog, self.default_model_name)
        return binder.bind(statement)

    def plan_for(self, text: str,
                 trace: AnyTrace = NULL_TRACE) -> PlannedStatement:
        """An optimized plan for ``text`` plus hit flag and cost estimate.

        The cache key is (canonical AST digest, literal tuple, catalog
        version, default model): any ``register_table``/``drop``/stats
        refresh bumps the version and retires every older plan.  The
        version is captured *before* binding — statistics computed
        lazily during this very optimization bump it mid-flight, in
        which case the entry is stored under the pre-bump version, ages
        out on the next lookup, and the statement is re-planned once
        against the now-stable statistics.

        An exact miss additionally probes the family's **generic plan**
        (see :mod:`repro.engine.plan_cache`): a family whose literals
        provably don't steer plan choice serves a parameterized
        template with this statement's literals bound in, skipping
        bind + optimize entirely.  Every full optimization on this path
        feeds ``PlanCache.observe`` for promotion/demotion tracking.
        """
        cache = self.state.plan_cache
        if cache is None or (self.optimizer_config
                             is not self.state.optimizer_config):
            # no cache, or this facade's optimizer config diverged from
            # the shared state's: cached plans would not match what this
            # session's optimizer would produce
            optimizer = self._optimizer()
            with trace.span("frontend.parse"):
                plan = self.sql_plan(text)
            with trace.span("optimize"):
                plan = optimizer.optimize(plan)
            return PlannedStatement(
                plan, False, optimizer.last_report.estimated_cost)
        # (canonical stays None above: without the shared-cache key
        # discipline the statement is not result-cacheable either)
        model = self.default_model_name
        version = self.catalog.version
        statement = None
        if trace.enabled:
            with trace.span("frontend.parse") as parse_span:
                canonical = cache.canonical_for(text, model)
                if canonical is None:
                    statement = parse_sql(text)
                    canonical = canonicalize(statement)
                parse_span.annotate(text_memo_hit=statement is None)
            with trace.span("plan_cache.probe") as probe:
                entry = cache.get(canonical, version, model)
                probe.annotate(hit=entry is not None,
                               catalog_version=version, model=model)
        else:
            # duplicated untraced arm: memo probe + cache get are the
            # repeated-statement hot path, kept span-free when disabled
            canonical = cache.canonical_for(text, model)
            if canonical is None:
                statement = parse_sql(text)
                canonical = canonicalize(statement)
            entry = cache.get(canonical, version, model)
        if entry is not None:
            if statement is not None:
                # a textually new spelling of a cached statement: memo it
                # so this spelling skips the lexer next time too
                cache.memo_text(text, model, canonical)
            return PlannedStatement(entry.plan, True, entry.estimated_cost,
                                    canonical=canonical,
                                    catalog_version=version,
                                    model_name=model, reuse=entry.reuse)
        # exact miss: a promoted family can still serve a generic plan
        # with these literals bound in, skipping bind+optimize entirely
        if trace.enabled:
            with trace.span("plan_cache.generic_probe") as generic_span:
                generic = cache.get_generic(canonical, version, model)
                generic_span.annotate(hit=generic is not None)
        else:
            generic = cache.get_generic(canonical, version, model)
        if generic is not None:
            if statement is not None:
                cache.memo_text(text, model, canonical)
            generic_plan, generic_cost = generic
            return PlannedStatement(generic_plan, True, generic_cost,
                                    canonical=canonical,
                                    catalog_version=version,
                                    model_name=model)
        with trace.span("frontend.bind"):
            if statement is None:
                statement = parse_sql(text)
            plan = Binder(self.catalog, model).bind(statement)
            reuse = None
            if self.state.reuse_registry is not None:
                # subsumption analysis + aux-column augmentation happen
                # before optimization, so the optimizer plans (and the
                # plan cache stores) the score-carrying variant once
                from repro.reuse.analysis import analyze_and_augment

                reuse, plan = analyze_and_augment(plan)
        optimizer = self._optimizer()
        with trace.span("optimize"):
            plan = optimizer.optimize(plan)
        estimated = optimizer.last_report.estimated_cost
        cache.put(text, canonical, version, model, plan, estimated,
                  reuse=reuse)
        if reuse is None or not getattr(reuse, "aux_columns", ()):
            # promotion evidence (and recheck verification) — skipped
            # for plans the reuse analysis actually *augmented*: their
            # aux score columns are tied to the registered result-cache
            # snapshot and must not leak into a family-wide template
            cache.observe(canonical, version, model, plan, estimated)
        return PlannedStatement(plan, False, estimated,
                                canonical=canonical, catalog_version=version,
                                model_name=model, reuse=reuse)

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        return self._optimizer().optimize(plan)

    def execute(self, plan: LogicalPlan, optimize: bool = True,
                trace: AnyTrace = NULL_TRACE) -> Table:
        """Run a logical plan; stores a :class:`QueryProfile`."""
        if optimize:
            plan = self.optimize(plan)
        with ExitStack() as stack:
            # hold read stripes for every model the plan embeds with
            # (deduped, bank order -> no double-acquire, no lock
            # cycles), so a concurrent cache invalidation (write
            # stripe) can never clear an arena mid-gather — same
            # discipline as the server's scheduled path
            for stripe in self.state.model_locks.stripes_for(
                    plan_models(plan)):
                stack.enter_context(stripe.read())
            started = time.perf_counter()
            with trace.span("execute") as exec_span:
                root = build_physical(plan, self.context)
                result = root.execute()
            elapsed = time.perf_counter() - started
        self.context.record_semantic_metrics()
        profile = QueryProfile.from_tree(
            root, elapsed, self.context.embedding_cache)
        self.state.statement_seconds.observe(elapsed)
        for op in profile.operators:
            self.state.operator_seconds.observe(op.seconds)
        # operator spans mirror the profile's operator table — same
        # rows, so the two views cannot disagree
        attach_profile_spans(exec_span, profile)
        self.last_profile = profile
        return result

    def explain(self, query: str | LogicalPlan,
                optimize: bool = True) -> str:
        """EXPLAIN a SQL string or a logical plan."""
        plan = self.sql_plan(query) if isinstance(query, str) else query
        optimizer = self._optimizer()
        if optimize:
            plan = optimizer.optimize(plan)
        return explain_plan(plan, optimizer.estimator, optimizer.cost_model)

    def explain_analyze(self, query: str | LogicalPlan,
                        optimize: bool = True) -> str:
        """EXPLAIN ANALYZE: run the query and show estimated vs actual
        rows and wall time per operator.

        The estimated/actual gap is the cardinality feedback the paper's
        adaptive execution (§VI) acts on — here surfaced for the user.
        """
        trace = Trace("explain_analyze", clock=time.perf_counter)
        with trace.span("frontend.parse"):
            plan = self.sql_plan(query) if isinstance(query, str) else query
        optimizer = self._optimizer()
        if optimize:
            with trace.span("optimize"):
                plan = optimizer.optimize(plan)

        root = build_physical(plan, self.context)
        with trace.span("execute") as exec_span:
            root.execute()
        trace.finish()
        elapsed = exec_span.seconds
        attach_operator_spans(
            exec_span,
            QueryProfile.from_tree(root, elapsed).operators)

        lines = [f"EXPLAIN ANALYZE  (total {elapsed * 1e3:.2f} ms)"]

        def visit(logical: LogicalPlan, physical, indent: int) -> None:
            estimated = optimizer.estimator.estimate(logical)
            actual = physical.rows_out
            drift = ""
            if estimated > 0 and actual > 0:
                ratio = max(estimated / actual, actual / estimated)
                if ratio >= 4.0:
                    drift = f"  <-- estimate off {ratio:.0f}x"
            lines.append(
                "  " * indent
                + f"{logical.label()}  [est~{estimated:,.0f} rows, "
                  f"actual {actual:,} rows, "
                  f"{physical.elapsed * 1e3:.2f} ms]{drift}"
                + pipeline_annotation(physical))
            for logical_child, physical_child in zip(logical.children,
                                                     physical.children):
                visit(logical_child, physical_child, indent + 1)

        visit(plan, root, 1)
        # the span tree is built from the same operator rows as the
        # table above, so the two sections cannot disagree on timings
        lines.append("trace:")
        lines.extend("  " + line for line in trace.pretty().splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _optimizer(self) -> Optimizer:
        return Optimizer(self.catalog, self.models,
                         config=self.optimizer_config,
                         execution_context=self.context)
