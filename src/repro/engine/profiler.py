"""Execution profiling: per-operator metrics collected after a run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import hit_ratio
from repro.relational.physical import FusedPipelineOp, PhysicalOperator


@dataclass
class OperatorProfile:
    label: str
    depth: int
    rows_out: int
    seconds: float


@dataclass
class QueryProfile:
    """What one query execution did."""

    operators: list[OperatorProfile] = field(default_factory=list)
    total_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    tokens_embedded: int = 0
    arena_rows: int = 0
    arena_bytes: int = 0
    # -- compiled-pipeline telemetry (zero when nothing fused) ---------
    #: Fused pipelines in the executed physical tree.
    fused_pipelines: int = 0
    #: Of those, how many paid a kernel compile this execution ...
    kernel_compiles: int = 0
    #: ... and how many were served from the shared kernel cache.
    kernel_cache_hits: int = 0
    #: Wall seconds spent compiling during this execution.
    kernel_compile_seconds: float = 0.0
    #: Backends the fused pipelines ran on ("python"/"numba").
    kernel_backends: list[str] = field(default_factory=list)
    # -- serving-layer fields (filled by Session.sql / the scheduler;
    #    None/zero for builder queries and unscheduled executions) -----
    #: Whether the statement's optimized plan came from the plan cache.
    plan_cache_hit: bool | None = None
    #: Whether the statement's *result* came from the cross-statement
    #: result cache (execution skipped entirely).  ``None`` when the
    #: result cache was not consulted (disabled, builder query, or the
    #: uncacheable planning path).
    result_cache_hit: bool | None = None
    #: Whether the result was derived from a *containing* cached
    #: statement by the semantic-reuse subsystem (threshold/top-k
    #: refinement, extra predicate, or projection subset answered
    #: residually — no embedding/join execution).  ``None`` when the
    #: reuse registry was not consulted.
    reuse_hit: bool | None = None
    #: Seconds the query sat in an admission queue before a worker
    #: picked it up (0.0 when executed inline).
    queue_wait_seconds: float = 0.0
    #: Admission lane the scheduler classified the query into
    #: ("interactive" | "heavy"), if it went through the scheduler.
    lane: str | None = None
    #: Tenant the query was accounted to, if it went through the server.
    tenant: str | None = None
    #: The statement's span tree (:class:`repro.obs.trace.Trace`), when
    #: the statement was sampled.  The operator spans and ``operators``
    #: are built from the same rows, so the two views cannot disagree.
    trace: object | None = None

    @property
    def cache_hit_rate(self) -> float:
        return hit_ratio(self.cache_hits, self.cache_misses)

    @classmethod
    def from_tree(cls, root: PhysicalOperator,
                  total_seconds: float,
                  embedding_caches: dict | None = None) -> "QueryProfile":
        profile = cls(total_seconds=total_seconds)

        def visit(op: PhysicalOperator, depth: int) -> None:
            profile.operators.append(OperatorProfile(
                op.label(), depth, op.rows_out, op.elapsed))
            if isinstance(op, FusedPipelineOp):
                profile.fused_pipelines += 1
                if op.cache_hit:
                    profile.kernel_cache_hits += 1
                else:
                    profile.kernel_compiles += 1
                profile.kernel_compile_seconds += op.compile_seconds
                profile.kernel_backends.append(op.backend)
            for child in op.children:
                visit(child, depth + 1)

        visit(root, 0)
        # snapshot: the dict may be shared with concurrently executing
        # queries that lazily create new per-model caches
        for cache in list((embedding_caches or {}).values()):
            profile.cache_hits += cache.hits
            profile.cache_misses += cache.misses
            profile.tokens_embedded += cache.model.tokens_embedded
            profile.arena_rows += getattr(cache, "rows", len(cache))
            profile.arena_bytes += getattr(cache, "nbytes", 0)
        return profile

    def pretty(self) -> str:
        lines = [f"total: {self.total_seconds * 1e3:.2f} ms  "
                 f"(cache {self.cache_hits} hits / "
                 f"{self.cache_misses} misses)"]
        if self.lane is not None:
            flag = {True: "hit", False: "miss", None: "-"}
            lines.append(f"serving: lane={self.lane}  "
                         f"plan-cache={flag[self.plan_cache_hit]}  "
                         f"result-cache={flag[self.result_cache_hit]}  "
                         f"reuse={flag[self.reuse_hit]}  "
                         f"queue wait {self.queue_wait_seconds * 1e3:.2f} ms")
        if self.fused_pipelines:
            backends = ",".join(sorted(set(self.kernel_backends)))
            lines.append(
                f"kernels: {self.fused_pipelines} fused pipeline(s) "
                f"[{backends}]  {self.kernel_compiles} compiles / "
                f"{self.kernel_cache_hits} cache hits  "
                f"compile {self.kernel_compile_seconds * 1e3:.2f} ms")
        if self.arena_rows:
            lines.append(f"arena: {self.arena_rows} rows / "
                         f"{self.arena_bytes / 1024:.1f} KiB  "
                         f"hit rate {self.cache_hit_rate:.1%}")
        for op in self.operators:
            lines.append(f"{'  ' * op.depth}{op.label}  "
                         f"rows={op.rows_out}  "
                         f"{op.seconds * 1e3:.2f} ms")
        if self.trace is not None and getattr(self.trace, "enabled", False):
            lines.append("trace:")
            lines.append(self.trace.pretty())
        return "\n".join(lines)
