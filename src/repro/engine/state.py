"""Shared engine state: the part of a session many clients can share.

Before the serving layer, every :class:`~repro.engine.session.Session`
owned a full copy of the expensive, slow-to-warm engine state — model
registry, embedding arenas, vector-index cache — so two sessions over
the same data paid the warm-up twice and shared no cache hits.
:class:`EngineState` is that state extracted into one object:

- **catalog** (+ federation) — registered tables and sources, versioned
  for plan-cache invalidation;
- **models** — the embedding model registry;
- **embedding_caches** — one arena-backed
  :class:`~repro.semantic.cache.EmbeddingCache` per model, shared by
  every client so a string embedded by any query is a hit for all;
- **index_cache** — the row-id-keyed vector-index cache (single-flight
  builds);
- **plan_cache** — optimized plans keyed on canonical SQL + catalog
  version;
- **result_cache** — byte-budgeted result snapshots keyed on canonical
  SQL + catalog version + model/arena/index generations, so a repeated
  statement skips execution entirely (see
  :mod:`repro.engine.result_cache`);
- **model_locks** — striped read-write locks addressed by model name,
  used by the server for operations that must exclude *all* readers of
  one model's caches (e.g. dropping a model's arena).

A stand-alone ``Session()`` still builds a private ``EngineState`` —
same behaviour as before, one owner.  An
:class:`~repro.server.EngineServer` builds one shared state and hands
every :class:`~repro.server.ClientSession` the same instance.
"""

from __future__ import annotations

from dataclasses import replace

from repro.embeddings.registry import ModelRegistry
from repro.engine.kernel_cache import KernelCache
from repro.engine.plan_cache import DEFAULT_PLAN_CACHE_CAPACITY, PlanCache
from repro.engine.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    ResultCache,
    ResultKey,
    strip_columns,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.optimizer.fusion import FUSION_MODES
from repro.optimizer.optimizer import OptimizerConfig
from repro.polystore.federation import Federation
from repro.relational.logical import LogicalPlan
from repro.relational.physical import DEFAULT_BATCH_SIZE, ExecutionContext
from repro.semantic.index_cache import IndexCache
from repro.storage.catalog import Catalog
from repro.utils.locks import StripedRWLock
from repro.utils.parallel import resolve_workers

DEFAULT_MODEL_NAME = "wiki-ft-100"


def plan_models(plan: LogicalPlan) -> set[str]:
    """Names of every embedding model a plan's semantic nodes use.

    Executors acquire the read stripe of each returned model before
    running the plan, so cache invalidation (the write stripe) can
    never clear an arena out from under a running gather.
    """
    models: set[str] = set()

    def visit(node: LogicalPlan) -> None:
        name = getattr(node, "model_name", None)
        if name:
            models.add(name)
        for child in node.children:
            visit(child)

    visit(plan)
    return models


def plan_tables(plan: LogicalPlan) -> set[str]:
    """Names of every catalog table a plan scans.

    The result-cache key carries ``(table, data_version)`` for each —
    the ingest subsystem's invalidation dimension — so the walk must see
    through fusion: a :class:`~repro.relational.pipeline.PipelineNode`
    embeds its scan as a stage, not a child.
    """
    tables: set[str] = set()

    def visit(node: LogicalPlan) -> None:
        name = getattr(node, "table_name", None)
        if name:
            tables.add(name)
        scan = getattr(node, "scan", None)
        if scan is not None and getattr(scan, "table_name", None):
            tables.add(scan.table_name)
        for child in node.children:
            visit(child)

    visit(plan)
    return tables


class EngineState:
    """Read-mostly engine state shareable across client sessions."""

    def __init__(self, seed: int = 7, load_default_model: bool = True,
                 optimizer_config: OptimizerConfig | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int | None = None,
                 plan_cache_capacity: int | None = None,
                 result_cache_bytes: int | None = None,
                 semantic_reuse: bool = True,
                 compiled_pipelines: str | None = None,
                 generic_plans: bool = True,
                 trace_sample: float = 1.0,
                 trace_log: object = None):
        self.seed = seed
        #: One registry per engine state: every subsystem registers its
        #: instruments here, and every exporter reads from here.
        self.metrics_registry = MetricsRegistry()
        #: Per-statement span tracer (``trace_sample`` is the sampling
        #: rate; ``trace_log`` an optional NDJSON sink path/file).
        self.tracer = Tracer(sample=trace_sample, sink=trace_log,
                             registry=self.metrics_registry)
        self.statements_total = self.metrics_registry.counter(
            "engine_statements_total",
            help="statements served (all paths: cached, reused, executed)")
        self.statement_seconds = self.metrics_registry.histogram(
            "engine_statement_seconds",
            buckets=(0.0001, 0.001, 0.01, 0.1, 1.0, 10.0),
            help="end-to-end wall seconds per executed statement")
        self.operator_seconds = self.metrics_registry.histogram(
            "engine_operator_seconds",
            buckets=(0.0001, 0.001, 0.01, 0.1, 1.0, 10.0),
            help="wall seconds per physical operator")
        self.catalog = Catalog()
        self.metrics_registry.gauge(
            "catalog_version", fn=lambda: self.catalog.version,
            help="monotonic catalog/statistics version")
        self.models = ModelRegistry()
        self.federation = Federation(self.catalog)
        self.workers = resolve_workers(parallelism)
        self.batch_size = batch_size
        #: model name -> EmbeddingCache; created lazily and race-safely
        #: by :func:`repro.semantic.lowering.cache_for`.
        self.embedding_caches: dict = {}
        # seed 0 matches what lazy creation in semantic.lowering always
        # used, so index randomization is unchanged by the extraction
        self.index_cache = IndexCache()
        self.index_cache.register_metrics(self.metrics_registry)
        self.model_locks = StripedRWLock()
        self.default_model_name = DEFAULT_MODEL_NAME
        # generic_plans=False pins every statement to per-literal
        # optimization (the promotion machinery never engages)
        self.plan_cache = PlanCache(
            plan_cache_capacity or DEFAULT_PLAN_CACHE_CAPACITY,
            registry=self.metrics_registry,
            enable_generic=generic_plans)
        # result_cache_bytes=0 disables cross-statement result caching
        # (every statement executes); None takes the default budget
        if result_cache_bytes is None:
            result_cache_bytes = DEFAULT_RESULT_CACHE_BYTES
        self.result_cache = (
            ResultCache(result_cache_bytes,
                        registry=self.metrics_registry)
            if result_cache_bytes else None)
        # semantic subsumption rides on result-cache snapshots: without
        # them there is nothing to answer residually from
        if semantic_reuse and self.result_cache is not None:
            from repro.reuse.registry import ReuseRegistry

            self.reuse_registry = ReuseRegistry(
                registry=self.metrics_registry)
        else:
            self.reuse_registry = None
        config = optimizer_config or OptimizerConfig()
        if config.cost_params.workers is None:
            # cost the parallel access path with the real worker count;
            # an explicitly set CostParams.workers keeps its tuning.
            # Copied, never mutated in place: a config shared across
            # sessions must not freeze the first session's worker count
            # into later ones.
            config = replace(config, cost_params=replace(
                config.cost_params, workers=self.workers))
        if compiled_pipelines is not None:
            if compiled_pipelines not in FUSION_MODES:
                raise ValueError(
                    f"compiled_pipelines must be one of {FUSION_MODES}, "
                    f"got {compiled_pipelines!r}")
            # knob beats config default, same copy-don't-mutate rule
            config = replace(config, compiled_pipelines=compiled_pipelines)
        self.optimizer_config = config
        #: Compiled fused-pipeline kernels, shared by every client the
        #: way the plan cache is (single-flight compiles; see
        #: engine.kernel_cache for the invalidation story).
        self.kernel_cache = KernelCache(registry=self.metrics_registry)
        #: Append/upsert front door: delta-maintains or precisely
        #: invalidates the caches above on row mutations
        #: (:mod:`repro.ingest`).
        from repro.ingest.manager import IngestManager

        self.ingest = IngestManager(self)
        if load_default_model:
            from repro.embeddings.pretrained import build_pretrained_model

            self.models.register(build_pretrained_model(seed=seed))

    def make_context(self, parallelism: int | None = None,
                     batch_size: int | None = None) -> ExecutionContext:
        """A fresh execution context wired to the shared caches.

        Contexts are cheap per-client (or per-query) objects: they share
        the catalog, model registry, embedding arenas, and index cache,
        but carry their own ``metrics`` dict and parallelism setting so
        concurrent executions never write into each other's telemetry.
        """
        workers = self.workers if parallelism is None \
            else resolve_workers(parallelism)
        return ExecutionContext(
            catalog=self.catalog, models=self.models,
            batch_size=batch_size or self.batch_size,
            parallelism=workers,
            # caches outlive the query that happens to create them, so
            # their embed parallelism is the machine-wide budget — not
            # whatever share that one query was leased
            cache_parallelism=self.workers,
            embedding_cache=self.embedding_caches,
            index_cache=self.index_cache,
            kernel_cache=self.kernel_cache,
            metrics_registry=self.metrics_registry)

    def result_key(self, planned) -> ResultKey | None:
        """The result-cache key for a planned statement, or ``None``.

        ``None`` means the statement is not result-cacheable: the result
        cache is disabled, or the statement bypassed the plan-cache
        machinery (no canonical form — e.g. a facade whose optimizer
        config diverged from the shared state's).

        Generations are read *now*, at lookup time, and the caller
        stores the post-execution result under this same key — see the
        capture discipline in :mod:`repro.engine.result_cache`.  Models
        whose arena does not exist yet record generation ``-1``; the
        cache refuses such keys at store time (the arena is created by
        the very execution that produced the result, so the key could
        never match again).
        """
        if self.result_cache is None or planned.canonical is None:
            return None
        caches = self.embedding_caches
        arena_generations = tuple(
            (name, cache.generation if (cache := caches.get(name))
             is not None else -1)
            for name in sorted(plan_models(planned.plan)))
        return ResultKey(
            digest=planned.canonical.digest,
            parameters=planned.canonical.parameters,
            catalog_version=planned.catalog_version,
            model_name=planned.model_name,
            index_generation=self.index_cache.generation,
            arena_generations=arena_generations,
            table_versions=tuple(
                (name, self.catalog.data_version(name))
                for name in sorted(plan_tables(planned.plan))))

    def fetch_result(self, key: ResultKey | None):
        """A defensive snapshot of the cached result for ``key``, or
        ``None`` (also when the key is ``None`` or the cache disabled).

        Both execution paths — ``Session.sql`` inline and
        ``EngineServer.submit`` — consult through here so the key
        discipline lives in one place.
        """
        if key is None or self.result_cache is None:
            return None
        return self.result_cache.get(key)

    def store_result(self, key: ResultKey | None, table,
                     planned=None):
        """Insert a result under the **pre-execution** key from
        :meth:`result_key`; returns the table *visible* to the caller.

        The captured key is what makes invalidation-during-execution
        safe: a register/clear that landed mid-run leaves this key
        below the watermark, and the cache refuses it dead-on-arrival.

        When ``planned`` carries an eligible reuse spec, ``table`` is
        the augmented execution's output: its reuse aux columns are
        snapshotted into the cache entry (and the entry indexed in the
        subsumption registry) but stripped from the returned table.
        """
        spec = getattr(planned, "reuse", None) if planned is not None \
            else None
        if spec is None or not spec.eligible:
            if key is not None and self.result_cache is not None:
                self.result_cache.put(key, table)
            return table
        from repro.reuse.analysis import describe_plan

        return self._store_reuse_eligible(key, table, spec,
                                          describe_plan(planned.plan))

    def _store_reuse_eligible(self, key, table, spec, shape,
                              owned: bool = False):
        """Snapshot an aux-carrying result + index it; returns the
        aux-stripped visible table.

        ``owned=True`` (the residual path, whose derived arrays share
        storage with nothing) hands the table to the cache without a
        second copy; the caller-visible strip is then copied instead so
        client mutations can never reach the stored entry.
        """
        if key is None or self.result_cache is None:
            return strip_columns(table, spec.aux_columns)
        rows = table.num_rows
        columns = tuple(table.schema.names)
        stored = self.result_cache.put(key, table,
                                       aux_names=spec.aux_columns,
                                       owned=owned)
        visible = strip_columns(table, spec.aux_columns)
        if owned and stored:
            from repro.engine.result_cache import snapshot_table

            visible = snapshot_table(visible)
        if stored and self.reuse_registry is not None:
            from repro.reuse.registry import ReuseEntry

            self.reuse_registry.register(ReuseEntry(
                key=key, spec=spec, shape=shape, rows=rows,
                columns=columns))
        return visible

    def fetch_reuse(self, planned, key: ResultKey | None):
        """Answer ``planned`` from a *containing* cached statement, or
        ``None`` (probe ineligible, no candidate subsumes, or a tie
        guard forced a fallback).

        Candidates live in the same containment family and must have
        been captured under exactly the probe's catalog version, model,
        and index/arena generations — the same freshness contract as an
        exact hit, enforced by comparing the non-identity fields of the
        two keys.  A successful residual answer is stored under the
        probe's own exact key (and registered), so an identical repeat
        is an exact hit and further refinements can chain off it.
        """
        registry = self.reuse_registry
        if registry is None or key is None or self.result_cache is None:
            return None
        spec = getattr(planned, "reuse", None)
        if spec is None or not spec.eligible:
            return None
        from repro.reuse.analysis import describe_plan, plan_containment
        from repro.reuse.residual import derive_residual

        candidates = registry.candidates(spec.family)
        probe_shape = None
        for entry in candidates:
            if entry.key == key:
                continue        # the exact entry already missed
            cached_key = entry.key
            if (cached_key.catalog_version != key.catalog_version
                    or cached_key.model_name != key.model_name
                    or cached_key.index_generation != key.index_generation
                    or cached_key.arena_generations
                    != key.arena_generations
                    or cached_key.table_versions != key.table_versions):
                # catalog versions, index generations, arena generation
                # tokens, and per-table data versions are all
                # monotonic: an entry below the probe's capture can
                # never serve again and is dropped; an entry *above* it
                # means this probe raced an invalidation — keep the
                # entry for fresh probes.  (model_name is a session
                # default, not a version: another session may still
                # match it, so only skip.)
                dead = (cached_key.catalog_version < key.catalog_version
                        or cached_key.index_generation
                        < key.index_generation
                        or any(cached_gen < probe_gen for
                               (_, cached_gen), (_, probe_gen)
                               in zip(cached_key.arena_generations,
                                      key.arena_generations)
                               if cached_gen != -1)
                        or any(cached_ver < probe_ver for
                               (_, cached_ver), (_, probe_ver)
                               in zip(cached_key.table_versions,
                                      key.table_versions)))
                if dead:
                    registry.discard(cached_key, stale=True)
                continue
            if probe_shape is None:
                probe_shape = describe_plan(planned.plan)
            try:
                action = plan_containment(entry.spec, entry.shape,
                                          entry.rows, entry.columns,
                                          spec, probe_shape)
                if action is None:
                    continue
                fetched = self.result_cache.get_full(cached_key)
                if fetched is None:
                    registry.discard(cached_key)     # snapshot evicted
                    continue
                derived = derive_residual(fetched[0], entry.spec, spec,
                                          action)
            except Exception:     # noqa: BLE001 — degrade, never fail
                # a defective candidate must cost a fresh execution,
                # not the query: drop it and move on
                registry.discard(cached_key)
                registry.record_fallback()
                continue
            if derived is None:
                registry.record_fallback()       # tie guard fired
                continue
            registry.record_hit()
            return self._store_reuse_eligible(key, derived, spec,
                                              probe_shape, owned=True)
        registry.record_miss()
        return None

    def arena_stats(self) -> dict:
        """Per-model embedding-arena statistics (metrics surface).

        Snapshots the dict first (atomic C-level copy): a concurrent
        query's ``cache_for`` may be inserting a new model's cache.
        """
        return {name: cache.stats()
                for name, cache
                in sorted(self.embedding_caches.copy().items())}
