"""Shared engine state: the part of a session many clients can share.

Before the serving layer, every :class:`~repro.engine.session.Session`
owned a full copy of the expensive, slow-to-warm engine state — model
registry, embedding arenas, vector-index cache — so two sessions over
the same data paid the warm-up twice and shared no cache hits.
:class:`EngineState` is that state extracted into one object:

- **catalog** (+ federation) — registered tables and sources, versioned
  for plan-cache invalidation;
- **models** — the embedding model registry;
- **embedding_caches** — one arena-backed
  :class:`~repro.semantic.cache.EmbeddingCache` per model, shared by
  every client so a string embedded by any query is a hit for all;
- **index_cache** — the row-id-keyed vector-index cache (single-flight
  builds);
- **plan_cache** — optimized plans keyed on canonical SQL + catalog
  version;
- **result_cache** — byte-budgeted result snapshots keyed on canonical
  SQL + catalog version + model/arena/index generations, so a repeated
  statement skips execution entirely (see
  :mod:`repro.engine.result_cache`);
- **model_locks** — striped read-write locks addressed by model name,
  used by the server for operations that must exclude *all* readers of
  one model's caches (e.g. dropping a model's arena).

A stand-alone ``Session()`` still builds a private ``EngineState`` —
same behaviour as before, one owner.  An
:class:`~repro.server.EngineServer` builds one shared state and hands
every :class:`~repro.server.ClientSession` the same instance.
"""

from __future__ import annotations

from dataclasses import replace

from repro.embeddings.registry import ModelRegistry
from repro.engine.plan_cache import DEFAULT_PLAN_CACHE_CAPACITY, PlanCache
from repro.engine.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    ResultCache,
    ResultKey,
)
from repro.optimizer.optimizer import OptimizerConfig
from repro.polystore.federation import Federation
from repro.relational.logical import LogicalPlan
from repro.relational.physical import DEFAULT_BATCH_SIZE, ExecutionContext
from repro.semantic.index_cache import IndexCache
from repro.storage.catalog import Catalog
from repro.utils.locks import StripedRWLock
from repro.utils.parallel import resolve_workers

DEFAULT_MODEL_NAME = "wiki-ft-100"


def plan_models(plan: LogicalPlan) -> set[str]:
    """Names of every embedding model a plan's semantic nodes use.

    Executors acquire the read stripe of each returned model before
    running the plan, so cache invalidation (the write stripe) can
    never clear an arena out from under a running gather.
    """
    models: set[str] = set()

    def visit(node: LogicalPlan) -> None:
        name = getattr(node, "model_name", None)
        if name:
            models.add(name)
        for child in node.children:
            visit(child)

    visit(plan)
    return models


class EngineState:
    """Read-mostly engine state shareable across client sessions."""

    def __init__(self, seed: int = 7, load_default_model: bool = True,
                 optimizer_config: OptimizerConfig | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int | None = None,
                 plan_cache_capacity: int | None = None,
                 result_cache_bytes: int | None = None):
        self.seed = seed
        self.catalog = Catalog()
        self.models = ModelRegistry()
        self.federation = Federation(self.catalog)
        self.workers = resolve_workers(parallelism)
        self.batch_size = batch_size
        #: model name -> EmbeddingCache; created lazily and race-safely
        #: by :func:`repro.semantic.lowering.cache_for`.
        self.embedding_caches: dict = {}
        # seed 0 matches what lazy creation in semantic.lowering always
        # used, so index randomization is unchanged by the extraction
        self.index_cache = IndexCache()
        self.model_locks = StripedRWLock()
        self.default_model_name = DEFAULT_MODEL_NAME
        self.plan_cache = PlanCache(
            plan_cache_capacity or DEFAULT_PLAN_CACHE_CAPACITY)
        # result_cache_bytes=0 disables cross-statement result caching
        # (every statement executes); None takes the default budget
        if result_cache_bytes is None:
            result_cache_bytes = DEFAULT_RESULT_CACHE_BYTES
        self.result_cache = (ResultCache(result_cache_bytes)
                             if result_cache_bytes else None)
        config = optimizer_config or OptimizerConfig()
        if config.cost_params.workers is None:
            # cost the parallel access path with the real worker count;
            # an explicitly set CostParams.workers keeps its tuning.
            # Copied, never mutated in place: a config shared across
            # sessions must not freeze the first session's worker count
            # into later ones.
            config = replace(config, cost_params=replace(
                config.cost_params, workers=self.workers))
        self.optimizer_config = config
        if load_default_model:
            from repro.embeddings.pretrained import build_pretrained_model

            self.models.register(build_pretrained_model(seed=seed))

    def make_context(self, parallelism: int | None = None,
                     batch_size: int | None = None) -> ExecutionContext:
        """A fresh execution context wired to the shared caches.

        Contexts are cheap per-client (or per-query) objects: they share
        the catalog, model registry, embedding arenas, and index cache,
        but carry their own ``metrics`` dict and parallelism setting so
        concurrent executions never write into each other's telemetry.
        """
        workers = self.workers if parallelism is None \
            else resolve_workers(parallelism)
        return ExecutionContext(
            catalog=self.catalog, models=self.models,
            batch_size=batch_size or self.batch_size,
            parallelism=workers,
            # caches outlive the query that happens to create them, so
            # their embed parallelism is the machine-wide budget — not
            # whatever share that one query was leased
            cache_parallelism=self.workers,
            embedding_cache=self.embedding_caches,
            index_cache=self.index_cache)

    def result_key(self, planned) -> ResultKey | None:
        """The result-cache key for a planned statement, or ``None``.

        ``None`` means the statement is not result-cacheable: the result
        cache is disabled, or the statement bypassed the plan-cache
        machinery (no canonical form — e.g. a facade whose optimizer
        config diverged from the shared state's).

        Generations are read *now*, at lookup time, and the caller
        stores the post-execution result under this same key — see the
        capture discipline in :mod:`repro.engine.result_cache`.  Models
        whose arena does not exist yet record generation ``-1``; the
        cache refuses such keys at store time (the arena is created by
        the very execution that produced the result, so the key could
        never match again).
        """
        if self.result_cache is None or planned.canonical is None:
            return None
        caches = self.embedding_caches
        arena_generations = tuple(
            (name, cache.generation if (cache := caches.get(name))
             is not None else -1)
            for name in sorted(plan_models(planned.plan)))
        return ResultKey(
            digest=planned.canonical.digest,
            parameters=planned.canonical.parameters,
            catalog_version=planned.catalog_version,
            model_name=planned.model_name,
            index_generation=self.index_cache.generation,
            arena_generations=arena_generations)

    def fetch_result(self, key: ResultKey | None):
        """A defensive snapshot of the cached result for ``key``, or
        ``None`` (also when the key is ``None`` or the cache disabled).

        Both execution paths — ``Session.sql`` inline and
        ``EngineServer.submit`` — consult through here so the key
        discipline lives in one place.
        """
        if key is None or self.result_cache is None:
            return None
        return self.result_cache.get(key)

    def store_result(self, key: ResultKey | None, table) -> None:
        """Insert a result under the **pre-execution** key from
        :meth:`result_key` (no-op when ``None``/disabled).

        The captured key is what makes invalidation-during-execution
        safe: a register/clear that landed mid-run leaves this key
        below the watermark, and the cache refuses it dead-on-arrival.
        """
        if key is not None and self.result_cache is not None:
            self.result_cache.put(key, table)

    def arena_stats(self) -> dict:
        """Per-model embedding-arena statistics (metrics surface).

        Snapshots the dict first (atomic C-level copy): a concurrent
        query's ``cache_for`` may be inserting a new model's cache.
        """
        return {name: cache.stats()
                for name, cache
                in sorted(self.embedding_caches.copy().items())}
