"""Residual execution: derive a refined result from a cached snapshot.

Given a cached super-result (visible columns plus the reuse aux columns
the augmented plan carried through execution) and a proven
:class:`~repro.reuse.analysis.ResidualPlan`, this module computes the
refined statement's result without touching the embedding kernels:

- **threshold refinement** re-applies the semantic comparison to the
  stored per-row scores.  The comparison is replicated *exactly*: the
  kernels compare float32 scores against a Python-float threshold, so
  the stored scores are narrowed back to float32 first (stored values
  are float32-exact, so the round trip loses nothing);
- **top-k truncation** keeps rows whose pair rank (position inside the
  left-distinct group's descending-score selection) is below the new k.
  A fresh execution with a *different* k resolves score ties through a
  different ``argpartition`` call, so ties at or above the truncation
  boundary make the selection (or its order) unprovable from the
  snapshot — :func:`derive_residual` returns ``None`` and the caller
  falls back to normal execution.  Equal k never truncates and needs no
  guard: the fresh run would issue the *same* selection call;
- **extra predicates** evaluate through the same vectorized expression
  trees the physical ``FilterOp`` uses, over the same column arrays;
- **projection / limit** select, rename, and truncate.

Every derived result is built from fresh arrays (boolean-mask
indexing), so callers can never mutate the cached snapshot through it.
"""

from __future__ import annotations

import numpy as np

from repro.reuse.analysis import ResidualPlan, ReuseSpec
from repro.storage.schema import Field, Schema
from repro.storage.table import Table


def _tie_hazard(groups: np.ndarray, ranks: np.ndarray,
                scores: np.ndarray, threshold: float,
                new_k: int, old_k: int) -> bool:
    """Whether a tie makes the ``new_k`` truncation unprovable.

    A fresh execution with a different k resolves equal scores through
    a different ``argpartition``, so any two *adjacent-rank* pairs with
    equal scores where the earlier one survives the truncation mean the
    selection (or its emission order) cannot be proven from the
    snapshot.

    Group ids are dense left-distinct indexes and stored ranks are a
    dense prefix of ``0..old_k-1`` per group, so the distinct pairs
    scatter collision-free into a ``(groups, old_k)`` matrix — no sort,
    one pass of vectorized comparisons.  Pathological shapes (a huge
    group count times a huge k) report a hazard instead of allocating:
    a conservative fallback to fresh execution, never a wrong answer.
    """
    n_groups = int(groups.max()) + 1
    if n_groups * old_k > 32_000_000:
        return True
    matrix = np.zeros((n_groups, old_k), dtype=np.float32)
    occupied = np.zeros((n_groups, old_k), dtype=bool)
    # expanded duplicate rows of one pair share the score: last write
    # wins and they all agree
    matrix[groups, ranks] = scores
    occupied[groups, ranks] = True
    adjacent = (occupied[:, :-1] & occupied[:, 1:]
                & (matrix[:, :-1] == matrix[:, 1:]))
    if not adjacent.any():
        return False
    # kept region per group: ranks below min(pairs clearing the new
    # threshold, new_k) — scores are nonincreasing in rank, so the
    # cleared pairs form a rank prefix
    cleared = ((matrix >= threshold) & occupied).sum(axis=1)
    kept_limit = np.minimum(cleared, new_k)
    in_kept = (np.arange(old_k - 1, dtype=np.int64)[None, :]
               < kept_limit[:, None])
    return bool((adjacent & in_kept).any())


def _topk_mask(table: Table, slot, threshold: float,
               new_k: int, old_k: int) -> np.ndarray | None:
    """Row mask for a top-k refinement, or ``None`` on a tie hazard."""
    scores = table.column(slot.score_column).astype(np.float32)
    above = scores >= threshold
    ranks = table.column(slot.rank_column)
    if new_k == old_k:
        # no truncation: a fresh run issues the identical k-selection,
        # so the threshold mask alone is exact, ties included
        return above
    groups = table.column(slot.group_column)
    if groups.shape[0] and _tie_hazard(groups, ranks, scores,
                                       threshold, new_k, old_k):
        return None
    return above & (ranks < new_k)


def derive_residual(table: Table, cached_spec: ReuseSpec,
                    probe_spec: ReuseSpec, action: ResidualPlan,
                    ) -> Table | None:
    """The probe statement's *full* result (visible + its aux columns)
    derived from the cached full snapshot, or ``None`` when a tie guard
    fired and the caller must execute normally."""
    mask = np.ones(table.num_rows, dtype=bool)
    for slot, threshold, top_k in action.refinements:
        if slot.kind == "filter" or slot.top_k is None:
            scores = table.column(slot.score_column).astype(np.float32)
            mask &= scores >= threshold
            continue
        slot_mask = _topk_mask(table, slot, threshold, top_k, slot.top_k)
        if slot_mask is None:
            return None
        mask &= slot_mask
    for expr in action.extra_conjuncts:
        mask &= np.asarray(expr.evaluate(table), dtype=bool)
    result = table.filter(mask)
    if action.limit is not None:
        result = result.slice(0, action.limit)

    if action.projection is None:
        # identical projections (or both SELECT *): the cached full
        # layout — visible plus aux — is exactly the probe's layout
        return result

    fields = []
    columns = {}
    for source, alias in action.projection:
        index = result.schema.index_of(source)
        field_ = result.schema.fields[index]
        fields.append(Field(alias, field_.dtype))
        columns[alias] = result.columns[field_.name]
    for cached_slot, probe_slot in zip(cached_spec.slots,
                                       probe_spec.slots):
        for source, target in (
                (cached_slot.score_column, probe_slot.score_column),
                (cached_slot.group_column, probe_slot.group_column),
                (cached_slot.rank_column, probe_slot.rank_column)):
            if source is None or target in columns:
                continue
            if target not in probe_spec.aux_columns:
                continue
            index = result.schema.index_of(source)
            field_ = result.schema.fields[index]
            fields.append(Field(target, field_.dtype))
            columns[target] = result.columns[field_.name]
    return Table(Schema(fields), columns)
