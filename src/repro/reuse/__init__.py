"""Semantic-subsumption reuse: answer refined statements from cached
super-results.

The exact result cache (PR 4) only recognises *byte-equal* statement
identity: the interactive pattern of re-issuing a semantic query with a
tightened threshold, a smaller ``TOP k``, an extra cheap predicate, or a
narrower projection misses and re-executes the expensive embedding/join
work.  This package closes that gap:

- :mod:`repro.reuse.analysis` — derives a statement's **reuse spec**
  (containment family, semantic slots, conjuncts, projection, limit)
  from its bound plan, augments the plan to carry per-row similarity
  scores and top-k ranks through execution, and proves containment
  between a probe spec and a cached entry;
- :mod:`repro.reuse.residual` — derives the refined statement's result
  from the cached super-result by refiltering / truncating / projecting,
  with tie guards that force a fallback whenever bit-identity cannot be
  proven from the snapshot alone;
- :mod:`repro.reuse.registry` — indexes result-cache entries by
  containment family so a probe is O(candidates-in-family), honoring the
  same versioned invalidation as the exact caches.

The correctness contract is strict: a subsumption answer must be
**bit-identical** to what fresh execution would have produced, and the
matcher refuses (falls back to normal execution) whenever the proof does
not hold — approximate vector indexes, data-induced-predicate rewrites,
diverged plan shapes, score ties at a truncation boundary.
"""

from repro.reuse.analysis import (
    REUSE_SAFE_METHODS,
    ReuseSpec,
    analyze_and_augment,
    describe_plan,
    plan_containment,
)
from repro.reuse.registry import ReuseEntry, ReuseRegistry
from repro.reuse.residual import derive_residual

__all__ = [
    "REUSE_SAFE_METHODS",
    "ReuseSpec",
    "ReuseEntry",
    "ReuseRegistry",
    "analyze_and_augment",
    "describe_plan",
    "derive_residual",
    "plan_containment",
]
