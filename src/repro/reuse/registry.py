"""Family-indexed registry of subsumption-eligible cached results.

The exact result cache keys on the full :class:`ResultKey` — probing it
for "any cached statement that *contains* this one" would be a full
scan.  The registry adds the missing index: entries bucket by
**containment family** (see :mod:`repro.reuse.analysis`), so a probe
only examines the handful of cached variants of its own statement
shape.

The registry stores no result data — just the spec/shape metadata the
matcher compares plus the :class:`ResultKey` under which the snapshot
lives in the result cache.  Invalidation therefore needs no events:

- a candidate whose key disagrees with the probe's freshly captured
  catalog version / model / index generation / arena generations can
  never be served and is dropped on sight (versions are monotonic);
- a candidate whose snapshot was evicted from the byte-budgeted result
  cache comes back empty on fetch and is dropped by the caller via
  :meth:`discard`.

Families are LRU-bounded by entry count; metadata is tiny, so the bound
exists to keep probes O(candidates-in-family) under adversarial
workloads rather than to save memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, hit_ratio
from repro.reuse.analysis import PlanShape, ReuseSpec

#: Default bound on registered entries across all families.
DEFAULT_REGISTRY_CAPACITY = 1024

#: An ``engine.result_cache.ResultKey`` (kept structural here to avoid
#: importing the engine package from the reuse layer).
_EntryKey = tuple[object, ...]


@dataclass(frozen=True)
class ReuseEntry:
    """One subsumption-eligible cached result's matching metadata."""

    key: _EntryKey               # engine.result_cache.ResultKey
    spec: ReuseSpec
    shape: PlanShape
    #: Stored snapshot's row count (LIMIT-bite checks) and full column
    #: names (extra-predicate / projection resolvability checks).
    rows: int
    columns: tuple[str, ...]


@dataclass
class ReuseStats:
    """Counters surfaced through ``EngineServer.metrics()["reuse"]``."""

    registered: int = 0
    probes: int = 0
    hits: int = 0
    misses: int = 0
    #: Containment held but a tie guard (or evicted snapshot) forced a
    #: fallback to normal execution.
    fallbacks: int = 0
    stale_drops: int = 0
    entries: int = 0
    families: int = 0

    @property
    def hit_rate(self) -> float:
        return hit_ratio(self.hits, self.probes - self.hits)

    def as_dict(self) -> dict[str, int | float]:
        return {
            "registered": self.registered,
            "probes": self.probes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "fallbacks": self.fallbacks,
            "stale_drops": self.stale_drops,
            "entries": self.entries,
            "families": self.families,
        }


#: A plan-family identity for digest tracking:
#: ``(canonical digest, catalog version, model name)``.
FamilyKey = tuple[str, int, str]


@dataclass
class FamilyDigest:
    """What one statement family's optimizations have shown so far."""

    #: Masked structural fingerprint every exemplar agreed on.
    fingerprint: str
    #: Distinct canonical parameter tuples optimized to ``fingerprint``.
    exemplars: set[tuple]
    #: Permanently literal-sensitive (fingerprint mismatch seen) or
    #: structurally unparameterizable — never promote again.
    demoted: bool = False


class FamilyDigestTracker:
    """Per-family evidence that literals don't steer plan choice.

    Generic-plan promotion (``engine/plan_cache.py``) asks one
    question: *have enough distinct literal tuples of this family
    optimized to the same literal-masked plan fingerprint?*  This
    tracker accumulates that evidence and remembers refusals.

    **Not thread-safe by design** — it holds no lock of its own and is
    mutated only under :class:`~repro.engine.plan_cache.PlanCache`'s
    lock (taking a second lock here would add an ordering edge to the
    engine's lock hierarchy for no benefit).
    """

    def __init__(self) -> None:
        self._families: dict[FamilyKey, FamilyDigest] = {}

    def observe(self, key: FamilyKey, fingerprint: str,
                parameters: tuple) -> int:
        """Record one full optimization's outcome for the family.

        Returns the number of distinct parameter tuples that have
        produced the family's (single) fingerprint, or ``-1`` when the
        family is demoted — either previously, or right now because
        ``fingerprint`` disagrees with the recorded one (the literals
        provably steer the optimizer, so the family may never serve a
        generic plan again at this catalog version).
        """
        record = self._families.get(key)
        if record is None:
            self._families[key] = FamilyDigest(
                fingerprint=fingerprint, exemplars={parameters})
            return 1
        if record.demoted:
            return -1
        if record.fingerprint != fingerprint:
            record.demoted = True
            record.exemplars.clear()
            return -1
        record.exemplars.add(parameters)
        return len(record.exemplars)

    def demote(self, key: FamilyKey) -> None:
        """Permanently bar the family from promotion (refusal path)."""
        record = self._families.get(key)
        if record is None:
            record = FamilyDigest(fingerprint="", exemplars=set())
            self._families[key] = record
        record.demoted = True
        record.exemplars.clear()

    def is_demoted(self, key: FamilyKey) -> bool:
        record = self._families.get(key)
        return record is not None and record.demoted

    def sweep_versions_before(self, version: int) -> None:
        """Drop records for older catalog versions (they can never be
        consulted again — the version is part of the key)."""
        stale = [key for key in self._families if key[1] < version]
        for key in stale:
            del self._families[key]

    def clear(self) -> None:
        self._families.clear()

    def __len__(self) -> int:
        return len(self._families)


class ReuseRegistry:
    """Thread-safe family index over subsumption-eligible entries."""

    def __init__(self, capacity: int = DEFAULT_REGISTRY_CAPACITY,
                 registry: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: family digest -> (ResultKey -> ReuseEntry), LRU per family
        self._families: dict[str, OrderedDict[_EntryKey, ReuseEntry]] = {}
        #: global LRU of keys for the capacity bound
        self._order: OrderedDict[_EntryKey, str] = OrderedDict()
        metrics = registry if registry is not None else MetricsRegistry()
        self._registrations = metrics.counter(
            "reuse_registered_total",
            help="subsumption-eligible results indexed")
        self._probes = metrics.counter(
            "reuse_probes_total", help="containment-family probes")
        self._hits = metrics.counter(
            "reuse_hits_total", help="statements answered residually")
        self._misses = metrics.counter(
            "reuse_misses_total", help="probes with no containing entry")
        self._fallbacks = metrics.counter(
            "reuse_fallbacks_total",
            help="containment held but a guard forced normal execution")
        self._stale_drops = metrics.counter(
            "reuse_stale_drops_total",
            help="version-dead or evicted entries dropped on sight")
        metrics.gauge("reuse_entries", fn=lambda: len(self._order),
                      help="indexed entries resident")
        metrics.gauge("reuse_families", fn=lambda: len(self._families),
                      help="distinct containment families indexed")
        metrics.gauge(
            "reuse_hit_ratio",
            fn=lambda: hit_ratio(
                self._hits.value, self._probes.value - self._hits.value),
            help="hits / probes; 0.0 before any probe")

    # -- population -----------------------------------------------------
    def register(self, entry: ReuseEntry) -> None:
        """Index ``entry`` (replacing any previous entry for its key)."""
        family = entry.spec.family
        with self._lock:
            bucket = self._families.setdefault(family, OrderedDict())
            bucket[entry.key] = entry
            bucket.move_to_end(entry.key)
            self._order[entry.key] = family
            self._order.move_to_end(entry.key)
            self._registrations.inc()
            while len(self._order) > self.capacity:
                evicted_key, evicted_family = self._order.popitem(last=False)
                self._drop_locked(evicted_key, evicted_family)

    # -- probing --------------------------------------------------------
    def candidates(self, family: str) -> list[ReuseEntry]:
        """Snapshot of the family's entries, most recently used first."""
        with self._lock:
            self._probes.inc()
            bucket = self._families.get(family)
            if not bucket:
                return []
            return list(reversed(bucket.values()))

    def record_hit(self) -> None:
        with self._lock:
            self._hits.inc()

    def record_miss(self) -> None:
        with self._lock:
            self._misses.inc()

    def record_fallback(self) -> None:
        with self._lock:
            self._fallbacks.inc()

    # -- maintenance ----------------------------------------------------
    def discard(self, key: _EntryKey, stale: bool = False) -> None:
        """Drop one entry (evicted snapshot or version-dead key)."""
        with self._lock:
            family = self._order.get(key)
            if family is None:
                return
            del self._order[key]
            self._drop_locked(key, family)
            if stale:
                self._stale_drops.inc()

    def _drop_locked(self, key: _EntryKey, family: str) -> None:
        bucket = self._families.get(family)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._families[family]

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._order)
            self._families.clear()
            self._order.clear()
            return dropped

    def stats(self) -> ReuseStats:
        with self._lock:
            return ReuseStats(
                registered=self._registrations.value,
                probes=self._probes.value,
                hits=self._hits.value, misses=self._misses.value,
                fallbacks=self._fallbacks.value,
                stale_drops=self._stale_drops.value,
                entries=len(self._order), families=len(self._families))

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)
