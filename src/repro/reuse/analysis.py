"""Reuse analysis: spec extraction, plan augmentation, containment proof.

Three jobs, all over the same statement structure:

1. :func:`analyze_and_augment` inspects a freshly **bound** (not yet
   optimized) plan and produces a :class:`ReuseSpec` — the statement's
   containment *family* plus everything the matcher compares: semantic
   thresholds / top-k values per slot, relational conjuncts, projection
   items, the limit.  When the statement is structurally eligible it also
   rebuilds the plan so execution carries the reuse **aux columns**
   (per-row semantic-filter scores, per-pair join ranks/groups) through
   to the final result, where the result cache snapshots them.

2. :func:`describe_plan` fingerprints an **optimized** plan: node shape
   with literals masked, per-join physical method, and whether
   data-induced predicates were applied.  Two statements are only
   comparable when their optimized shapes agree — a diverged join order
   or access path changes row order and score arithmetic, which breaks
   the bit-identity contract.

3. :func:`plan_containment` proves (or refuses) that a cached entry
   subsumes a probe statement and, on success, returns the residual
   actions (:class:`ResidualPlan`) the executor applies to the snapshot.

The *family* groups statements that can possibly subsume one another:
same scans, joins, semantic operators (column/probe/model/mode — with
threshold and top-k values masked out), sort keys, and limit-presence.
Relational WHERE conjuncts and the projection are deliberately **not**
part of the family — they are the axes along which a refined statement
may differ — and are compared explicitly by the matcher instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.relational.expressions import And, ColumnRef, Expr
from repro.relational.logical import (
    FilterNode,
    JoinNode,
    JoinType,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SemanticFilterNode,
    SemanticJoinNode,
    SemanticSemiFilterNode,
    SortNode,
)
from repro.relational.pipeline import PipelineNode

#: Physical semantic-join methods whose per-pair scores are a pure,
#: execution-config-independent function of the inputs.  ``parallel``
#: is excluded — its GEMM chunking follows the query's *leased* worker
#: share, which varies under load, and BLAS results are only
#: reproducible for a fixed blocking; ``quantized`` regenerates its
#: candidate set per threshold; the ANN indexes (lsh/ivf/hnsw) are
#: approximate, so a cached candidate set is not provably a superset of
#: a refined query's.
REUSE_SAFE_METHODS = frozenset({
    "blocked", "rowkernel", "nested_loop", "prefetched", "index:brute",
})

#: Prefix of every reuse-internal auxiliary column.  Statements whose
#: own schema uses the prefix are ineligible rather than ambiguous.
AUX_PREFIX = "__reuse_"


@dataclass(frozen=True)
class SemanticSlot:
    """One semantic operator's refinable knobs and stored aux columns."""

    kind: str                    # "filter" | "join"
    threshold: float
    top_k: int | None            # joins only; None = threshold join
    #: Column of the stored snapshot holding this slot's per-row scores
    #: (float32 values, possibly widened to float64 — the residual
    #: executor narrows back before comparing, which is exact).
    score_column: str
    #: Top-k joins only: per-row left-distinct group id and pair rank.
    group_column: str | None = None
    rank_column: str | None = None
    #: Joins only: identity used to align this slot with the optimized
    #: plan's method decision — (left_column, right_column, model).
    slot_key: tuple | None = None


@dataclass(frozen=True)
class ProjectionItem:
    """One SELECT item: structural identity, output alias, and — when the
    expression is a plain column reference — its source column name."""

    identity: str                # repr() of the bound expression
    alias: str
    column: str | None           # set for plain ColumnRef items


@dataclass(frozen=True)
class ReuseSpec:
    """Everything the containment matcher needs about one statement."""

    #: Containment-family digest (structure with thresholds/k masked).
    family: str
    slots: tuple[SemanticSlot, ...] = ()
    #: Relational WHERE conjuncts: repr identity -> bound expression.
    #: (Stored as parallel tuples to stay hashable/frozen.)
    conjunct_ids: tuple[str, ...] = ()
    conjunct_exprs: tuple[Expr, ...] = ()
    #: ``None`` for ``SELECT *`` (no projection node).
    projection: tuple[ProjectionItem, ...] | None = None
    limit: int | None = None
    #: Aux columns the augmented plan appends (stripped before results
    #: reach callers; retained inside result-cache snapshots).
    aux_columns: tuple[str, ...] = ()
    #: False when extra-predicate subsumption is unsound for this shape
    #: (top-k joins or outer joins present — a pushed-down predicate
    #: would change the top-k candidate set / null-padding).
    extras_allowed: bool = True
    has_top_k: bool = False
    eligible: bool = False
    reason: str = ""


@dataclass(frozen=True)
class PlanShape:
    """Optimized-plan shape summary for cross-statement comparability."""

    fingerprint: str
    #: (left_column, right_column, model) -> physical method, for every
    #: semantic join.  ``None`` when two joins share a key (ambiguous).
    methods: tuple | None
    #: False when DIP inserted a semantic semi-filter: its pruning mask
    #: is computed in a different GEMM shape than the join's scores, so
    #: boundary rows are not provably identical across thresholds.
    dip_free: bool


@dataclass(frozen=True)
class ResidualPlan:
    """Actions deriving the probe's result from the cached snapshot."""

    #: (cached slot, probe threshold, probe top_k) — only slots whose
    #: knobs actually tightened.
    refinements: tuple[tuple[SemanticSlot, float, int | None], ...]
    #: Probe conjuncts absent from the cached statement.
    extra_conjuncts: tuple[Expr, ...]
    #: (source column in snapshot, output alias) in output order, or
    #: ``None`` to keep the cached visible columns as-is.  Aux-column
    #: renames are not listed here: the residual executor derives them
    #: from the cached/probe slot pairs directly.
    projection: tuple[tuple[str, str], ...] | None
    limit: int | None


# ---------------------------------------------------------------------------
# pass 1+2: analyze a bound plan and augment it with aux columns
# ---------------------------------------------------------------------------
@dataclass
class _Walk:
    """Mutable state shared by the analysis/augmentation traversals."""

    parts: list = field(default_factory=list)          # family text parts
    filters: list = field(default_factory=list)        # SemanticFilterNode
    joins: list = field(default_factory=list)          # SemanticJoinNode
    conjunct_ids: list = field(default_factory=list)
    conjunct_exprs: list = field(default_factory=list)
    projection: list | None = None
    limit: int | None = None
    has_outer: bool = False
    reason: str = ""

    def refuse(self, reason: str) -> None:
        if not self.reason:
            self.reason = reason


def _split_conjuncts(expr: Expr, out: list[Expr]) -> None:
    if isinstance(expr, And):
        _split_conjuncts(expr.left, out)
        _split_conjuncts(expr.right, out)
        return
    out.append(expr)


def _analyze(node: LogicalPlan, walk: _Walk, is_root: bool) -> None:
    """Post-order analysis: children first, so slot indexes match the
    order operators *apply* (innermost filter = slot 0)."""
    for child in node.children:
        _analyze(child, walk, False)
    if isinstance(node, ScanNode):
        walk.parts.append(f"scan {node.table_name} as {node.qualifier}")
        if any(name.startswith(AUX_PREFIX) for name in node.schema.names):
            walk.refuse("reserved __reuse_ column in source schema")
    elif isinstance(node, FilterNode):
        conjuncts: list[Expr] = []
        _split_conjuncts(node.predicate, conjuncts)
        for conjunct in conjuncts:
            walk.conjunct_ids.append(repr(conjunct))
            walk.conjunct_exprs.append(conjunct)
    elif isinstance(node, ProjectNode):
        if not is_root:
            walk.refuse("projection below the plan root")
        if any(alias.startswith(AUX_PREFIX) for _, alias in node.exprs):
            walk.refuse("reserved __reuse_ projection alias")
        walk.projection = [(repr(expr), alias, expr) for expr, alias
                           in node.exprs]
    elif isinstance(node, JoinNode):
        keys = ",".join(f"{l}={r}" for l, r
                        in zip(node.left_keys, node.right_keys))
        walk.parts.append(f"join {node.join_type.value} [{keys}]")
        if node.extra_predicate is not None:
            walk.refuse("join with residual theta predicate")
        if node.join_type not in (JoinType.INNER, JoinType.CROSS):
            walk.has_outer = True
    elif isinstance(node, SemanticFilterNode):
        if node.score_alias:
            walk.refuse("semantic filter already aliases its score")
        walk.parts.append(
            f"semfilter {node.column} ~[{node.mode}] {node.probe!r} "
            f"model {node.model_name} threshold ?")
        walk.filters.append(node)
    elif isinstance(node, SemanticJoinNode):
        if node.score_alias.startswith(AUX_PREFIX) \
                or node.aux_alias is not None:
            walk.refuse("semantic join already carries reuse aliases")
        walk.parts.append(
            f"semjoin {node.left_column} ~ {node.right_column} "
            f"model {node.model_name} threshold ? "
            f"top {'?' if node.top_k is not None else 'none'} "
            f"score={node.score_alias}")
        walk.joins.append(node)
    elif isinstance(node, SortNode):
        keys = ",".join(f"{name}:{'a' if asc else 'd'}"
                        for name, asc in node.keys)
        walk.parts.append(f"sort [{keys}]")
    elif isinstance(node, LimitNode):
        walk.parts.append("limit ?")
        walk.limit = node.count
    else:
        walk.refuse(f"{type(node).__name__} is not subsumption-eligible")


def _slot_names(index: int, kind: str) -> str:
    return f"{AUX_PREFIX}{kind}{index}"


def _rebuild(node: LogicalPlan, counters: dict) -> LogicalPlan:
    """Rebuild the plan bottom-up with aux aliases set (fresh nodes, so
    cached schemas are recomputed with the extra columns)."""
    children = tuple(_rebuild(child, counters) for child in node.children)
    if isinstance(node, SemanticFilterNode):
        index = counters["f"]
        counters["f"] += 1
        return SemanticFilterNode(
            children[0], node.column, node.probe, node.model_name,
            node.threshold, score_alias=_slot_names(index, "f"),
            mode=node.mode)
    if isinstance(node, SemanticJoinNode):
        index = counters["j"]
        counters["j"] += 1
        if node.top_k is None:
            return node.with_children(children)
        return SemanticJoinNode(
            children[0], children[1], node.left_column, node.right_column,
            node.model_name, node.threshold, score_alias=node.score_alias,
            top_k=node.top_k, aux_alias=_slot_names(index, "j"))
    return node.with_children(children)


def analyze_and_augment(
        plan: LogicalPlan) -> tuple[ReuseSpec, LogicalPlan]:
    """The statement's :class:`ReuseSpec` plus its augmented plan.

    Ineligible statements return ``(spec(eligible=False), plan)`` with
    the plan untouched — they execute exactly as before and are simply
    invisible to the reuse registry.
    """
    walk = _Walk()
    _analyze(plan, walk, True)
    if walk.reason:
        return ReuseSpec(family="", eligible=False,
                         reason=walk.reason), plan

    slots: list[SemanticSlot] = []
    aux_columns: list[str] = []
    has_project = walk.projection is not None
    for index, node in enumerate(walk.filters):
        name = _slot_names(index, "f")
        slots.append(SemanticSlot(kind="filter", threshold=node.threshold,
                                  top_k=None, score_column=name))
        aux_columns.append(name)
    join_keys_seen = set()
    ambiguous = False
    for index, node in enumerate(walk.joins):
        prefix = _slot_names(index, "j")
        score_column = (f"{prefix}_score" if has_project
                        else node.score_alias)
        group = rank = None
        if node.top_k is not None:
            group, rank = f"{prefix}_group", f"{prefix}_rank"
            aux_columns.extend([group, rank])
        if has_project:
            aux_columns.append(score_column)
        slot_key = (node.left_column, node.right_column, node.model_name)
        if slot_key in join_keys_seen:
            ambiguous = True
        join_keys_seen.add(slot_key)
        slots.append(SemanticSlot(kind="join", threshold=node.threshold,
                                  top_k=node.top_k,
                                  score_column=score_column,
                                  group_column=group, rank_column=rank,
                                  slot_key=slot_key))
    if ambiguous:
        return ReuseSpec(family="", eligible=False,
                         reason="duplicate semantic-join signature"), plan

    family = hashlib.blake2b("\n".join(walk.parts).encode("utf-8"),
                             digest_size=16).hexdigest()
    projection = None
    if walk.projection is not None:
        projection = tuple(
            ProjectionItem(identity=identity, alias=alias,
                           column=expr.name
                           if isinstance(expr, ColumnRef) else None)
            for identity, alias, expr in walk.projection)
    has_top_k = any(slot.top_k is not None for slot in slots)
    spec = ReuseSpec(
        family=family, slots=tuple(slots),
        conjunct_ids=tuple(walk.conjunct_ids),
        conjunct_exprs=tuple(walk.conjunct_exprs),
        projection=projection, limit=walk.limit,
        aux_columns=tuple(aux_columns),
        extras_allowed=not has_top_k and not walk.has_outer,
        has_top_k=has_top_k, eligible=True)

    augmented = _rebuild(plan, {"f": 0, "j": 0})
    if isinstance(augmented, ProjectNode) and aux_columns:
        exprs = list(augmented.exprs)
        for index, node in enumerate(walk.filters):
            name = _slot_names(index, "f")
            exprs.append((ColumnRef(name), name))
        for index, node in enumerate(walk.joins):
            prefix = _slot_names(index, "j")
            exprs.append((ColumnRef(node.score_alias), f"{prefix}_score"))
            if node.top_k is not None:
                exprs.append((ColumnRef(f"{prefix}_group"),
                              f"{prefix}_group"))
                exprs.append((ColumnRef(f"{prefix}_rank"),
                              f"{prefix}_rank"))
        augmented = ProjectNode(augmented.child, exprs)
    return spec, augmented


# ---------------------------------------------------------------------------
# optimized-plan shape
# ---------------------------------------------------------------------------
def describe_plan(plan: LogicalPlan) -> PlanShape:
    """Shape fingerprint + per-join methods of an optimized plan.

    Filter and Project nodes are excluded from the fingerprint: their
    placement legitimately varies with pushdown, and (for eligible
    shapes) commutes with the row sets the residual executor reasons
    about.  Join order, join algorithms, semantic access paths, sort
    keys, and limit presence must all agree exactly.
    """
    parts: list[str] = []
    methods: dict = {}
    ambiguous = False
    dip_free = True

    def visit(node: LogicalPlan) -> None:
        nonlocal ambiguous, dip_free
        for child in node.children:
            visit(child)
        if isinstance(node, PipelineNode):
            # fusion is transparent to reuse: a fused plan must
            # fingerprint exactly like its unfused twin (Filter/Project
            # stages excluded, Scan/Limit stages contribute their parts),
            # or cost-model flips between a base statement and its
            # refinement would silently break subsumption matching
            for stage in node.stages:
                visit_stage(stage)
            return
        visit_stage(node)

    def visit_stage(node: LogicalPlan) -> None:
        nonlocal ambiguous, dip_free
        if isinstance(node, ScanNode):
            parts.append(f"scan {node.table_name} as {node.qualifier}")
        elif isinstance(node, (FilterNode, ProjectNode)):
            pass
        elif isinstance(node, SemanticSemiFilterNode):
            dip_free = False
        elif isinstance(node, JoinNode):
            keys = ",".join(f"{l}={r}" for l, r
                            in zip(node.left_keys, node.right_keys))
            parts.append(f"join {node.join_type.value} [{keys}] "
                         f"algo={node.hints.get('algorithm')}")
        elif isinstance(node, SemanticJoinNode):
            method = node.hints.get("method", "blocked")
            key = (node.left_column, node.right_column, node.model_name)
            if key in methods:
                ambiguous = True
            methods[key] = method
            parts.append(f"semjoin {node.left_column} ~ "
                         f"{node.right_column} model {node.model_name} "
                         f"top {'?' if node.top_k is not None else 'none'} "
                         f"method={method}")
        elif isinstance(node, SemanticFilterNode):
            parts.append(f"semfilter {node.column} ~[{node.mode}] "
                         f"{node.probe!r} model {node.model_name}")
        elif isinstance(node, SortNode):
            keys = ",".join(f"{name}:{'a' if asc else 'd'}"
                            for name, asc in node.keys)
            parts.append(f"sort [{keys}]")
        elif isinstance(node, LimitNode):
            parts.append("limit ?")
        else:
            parts.append(f"other {type(node).__name__}")

    visit(plan)
    fingerprint = hashlib.blake2b("\n".join(parts).encode("utf-8"),
                                  digest_size=16).hexdigest()
    return PlanShape(fingerprint=fingerprint,
                     methods=None if ambiguous
                     else tuple(sorted(methods.items())),
                     dip_free=dip_free)


# ---------------------------------------------------------------------------
# containment proof
# ---------------------------------------------------------------------------
def _method_for(shape: PlanShape, slot_key: tuple) -> str | None:
    if shape.methods is None:
        return None
    for key, method in shape.methods:
        if key == slot_key:
            return method
    return None


def _faithful_columns(spec: ReuseSpec,
                      columns: tuple[str, ...]) -> set[str]:
    """Snapshot column names that faithfully hold the *source* column
    of the same name.

    Binding extra predicates (or plain-column projection items) against
    the snapshot resolves purely by name, so a projection alias that
    shadows a source column (``cost AS price``) would silently bind the
    wrong data.  A ``SELECT *`` snapshot carries the raw pre-projection
    columns; a projected snapshot is faithful only where an item is an
    unaliased passthrough (``item.column == item.alias``).
    """
    if spec.projection is None:
        return set(columns)
    return {item.alias for item in spec.projection
            if item.column is not None and item.column == item.alias}


def plan_containment(cached_spec: ReuseSpec, cached_shape: PlanShape,
                     cached_rows: int, cached_columns: tuple[str, ...],
                     probe_spec: ReuseSpec, probe_shape: PlanShape,
                     ) -> ResidualPlan | None:
    """Prove that the cached statement subsumes the probe; ``None``
    refuses (the caller executes normally).

    ``cached_rows``/``cached_columns`` describe the stored snapshot (its
    row count decides whether a LIMIT bit; its column names decide
    whether extra predicates and projections can be evaluated on it).
    """
    if not (cached_spec.eligible and probe_spec.eligible):
        return None
    if cached_spec.family != probe_spec.family:
        return None
    if len(cached_spec.slots) != len(probe_spec.slots):
        return None
    # plan-shape comparability: same join order / algorithms / access
    # paths, no DIP rewrites on either side
    if not (cached_shape.dip_free and probe_shape.dip_free):
        return None
    if cached_shape.fingerprint != probe_shape.fingerprint:
        return None

    # -- semantic slots: thresholds may only tighten, k only shrink ----
    refinements: list[tuple[SemanticSlot, float, int | None]] = []
    refined = False
    for cached_slot, probe_slot in zip(cached_spec.slots,
                                       probe_spec.slots):
        if cached_slot.kind != probe_slot.kind:
            return None
        if probe_slot.threshold < cached_slot.threshold:
            return None
        if (cached_slot.top_k is None) != (probe_slot.top_k is None):
            return None
        if (cached_slot.top_k is not None
                and probe_slot.top_k > cached_slot.top_k):
            return None
        if cached_slot.kind == "join":
            method = _method_for(cached_shape, cached_slot.slot_key)
            if method is None or method not in REUSE_SAFE_METHODS:
                return None
            # fingerprint equality already forces probe method == cached
        if (probe_slot.threshold > cached_slot.threshold
                or cached_slot.top_k != probe_slot.top_k):
            refinements.append((cached_slot, probe_slot.threshold,
                                probe_slot.top_k))
            refined = True

    # -- with a top-k join present, only that join's own knobs may
    # differ: any other refinement (or extra predicate) changes the
    # join's inputs once the optimizer pushes it down, which changes
    # the selected candidates themselves
    if cached_spec.has_top_k:
        for cached_slot, threshold, top_k in refinements:
            if cached_slot.kind != "join" or cached_slot.top_k is None:
                return None

    # -- relational conjuncts: cached must be a subset of probe --------
    cached_ids = set(cached_spec.conjunct_ids)
    probe_ids = set(probe_spec.conjunct_ids)
    if not cached_ids <= probe_ids:
        return None
    extras = tuple(expr for identity, expr
                   in zip(probe_spec.conjunct_ids,
                          probe_spec.conjunct_exprs)
                   if identity not in cached_ids)
    faithful = _faithful_columns(cached_spec, cached_columns)
    if extras:
        if not (cached_spec.extras_allowed and probe_spec.extras_allowed):
            return None
        for expr in extras:
            # exact-name resolution against *faithful* columns only:
            # suffix matching, or a projection alias shadowing a source
            # column, would bind different data than the fresh plan's
            # pre-projection evaluation did
            if not expr.columns() <= faithful:
                return None
        refined = True

    # -- projection: probe items must be derivable from the snapshot --
    projection: tuple[tuple[str, str], ...] | None = None
    if probe_spec.projection is None:
        # a SELECT * probe needs every source column: only a SELECT *
        # cached entry has them all
        if cached_spec.projection is not None:
            return None
    elif probe_spec.projection != cached_spec.projection:
        # probe items resolve either to the cached statement's identical
        # computed item (same expression ⇒ same values under any output
        # name) or, for plain column references, to a *faithful*
        # snapshot column — never to a shadowing projection alias
        cached_by_identity = {item.identity: item.alias
                              for item in (cached_spec.projection or ())}
        column_set = set(cached_columns)
        mapping = []
        for item in probe_spec.projection:
            source = cached_by_identity.get(item.identity)
            if source is None and item.column is not None \
                    and item.column in faithful:
                source = item.column
            if source is None or source not in column_set:
                return None
            mapping.append((source, item.alias))
        projection = tuple(mapping)

    # -- limit ---------------------------------------------------------
    limit = None
    if (cached_spec.limit is None) != (probe_spec.limit is None):
        return None
    if probe_spec.limit is not None:
        if probe_spec.limit > cached_spec.limit:
            return None
        if cached_rows >= cached_spec.limit and refined:
            # the cached LIMIT may have cut rows the refined statement
            # would have surfaced — only a pure prefix shrink is safe
            return None
        limit = probe_spec.limit

    return ResidualPlan(refinements=tuple(refinements),
                        extra_conjuncts=extras,
                        projection=projection, limit=limit)
