"""The paper's primary contribution, assembled: a context-rich engine."""

from repro.core.engine import ContextRichEngine

__all__ = ["ContextRichEngine"]
