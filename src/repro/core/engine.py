"""ContextRichEngine: the top-level public API.

A :class:`~repro.engine.session.Session` plus convenience constructors for
the paper's workloads, so the quickstart is three lines::

    from repro.core import ContextRichEngine

    engine = ContextRichEngine()
    engine.load_retail_workload()
    engine.sql("SELECT ... SEMANTIC JOIN ...")
"""

from __future__ import annotations

from repro.engine.session import Session
from repro.optimizer.optimizer import OptimizerConfig
from repro.polystore.image_store import ObjectDetectionModel
from repro.workloads.logs import LogWorkload
from repro.workloads.retail import RetailWorkload


class ContextRichEngine(Session):
    """The next-generation analytical engine of the paper, in one object.

    Everything a :class:`Session` does — table/source/model registration,
    SQL with semantic operators, the builder API, holistic optimization,
    profiling — plus workload loaders used by the examples and benchmarks.
    """

    def __init__(self, seed: int = 7,
                 optimizer_config: OptimizerConfig | None = None,
                 **session_kwargs):
        super().__init__(seed=seed, optimizer_config=optimizer_config,
                         **session_kwargs)
        self.seed = seed

    def load_retail_workload(self, workload: RetailWorkload | None = None,
                             detection_model: ObjectDetectionModel | None = None,
                             ) -> RetailWorkload:
        """Register the Figure-2 retail ecosystem (RDBMS + KB + images)."""
        workload = workload or RetailWorkload(seed=self.seed)
        workload.register_into(self.catalog,
                               detection_model=detection_model)
        return workload

    def load_log_workload(self, workload: LogWorkload | None = None,
                          table_name: str = "logs",
                          register_model: bool = True) -> LogWorkload:
        """Register the log-analysis workload.

        Also registers ``log-model``, a representation model specialized
        for the log-event domain (paper §III: adapt large-scale models to
        specific tasks).
        """
        workload = workload or LogWorkload(seed=self.seed)
        self.catalog.register(table_name, workload.generate(), replace=True)
        if register_model and "log-model" not in self.models:
            from repro.workloads.logs import build_log_model

            self.register_model(build_log_model(seed=self.seed))
        return workload
