"""Admission-controlled query scheduler: bounded pool, two lanes.

The serving layer cannot just hand every incoming query a thread — a
burst of heavy semantic joins would seize every core and interactive
dashboards would stall behind them.  The scheduler therefore:

1. **Bounds concurrency.**  A fixed worker pool sized by the same
   ``utils.parallel`` budget the kernels use executes queries; a query
   admitted while all workers are busy waits in a queue, and queue
   depth is bounded — past the bound, :class:`AdmissionError` tells the
   client to back off *now* instead of letting latency grow without
   limit (load shedding, not buffering).
2. **Classifies by estimated cost.**  The optimizer's cost estimate —
   free on a plan-cache hit, computed anyway on a miss — sorts queries
   into an ``interactive`` or ``heavy`` lane at admission.  Workers
   prefer the interactive lane so cheap queries overtake expensive
   ones, with a periodic forced pick from the heavy lane so it can
   never starve outright.
3. **Budgets intra-query parallelism.**  Each running query leases a
   kernel-worker share from the shared
   :class:`~repro.utils.parallel.WorkerBudget`, so one query on an idle
   server fans its kernels across the whole machine while sixteen
   concurrent queries get one worker each — instead of 16 x 16 threads.

Per-query and per-tenant telemetry (queue wait, run time, lane, plan
cache hits) aggregates in the scheduler and surfaces through
``EngineServer.metrics()`` and each query's ``QueryProfile``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.errors import AdmissionError, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.utils.parallel import WorkerBudget

#: Estimated-cost boundary between the interactive and heavy lanes, in
#: the cost model's abstract units.  Calibration: a full relational
#: aggregate over ~100k rows sits near 2.5e5; a blocked semantic join of
#: 1k x 1k distinct strings costs ~1.4e6.  Everything up to "small
#: semantic work" stays interactive; big semantic joins go heavy.
INTERACTIVE_COST_THRESHOLD = 1_000_000.0

#: Every Nth dispatch prefers the heavy lane even when interactive work
#: is waiting, so a steady interactive stream cannot starve heavy
#: queries forever.
HEAVY_PICK_EVERY = 4


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for the admission scheduler."""

    #: Worker threads executing queries; ``None`` = the machine budget
    #: (``utils.parallel.resolve_workers``), shared with the kernels.
    workers: int | None = None
    #: Queries allowed to wait per lane before admission refuses.
    max_queue_depth: int = 128
    #: Lane classification boundary (cost-model units).
    interactive_cost_threshold: float = INTERACTIVE_COST_THRESHOLD
    #: Anti-starvation period for the heavy lane.
    heavy_pick_every: int = HEAVY_PICK_EVERY
    #: Per-tenant fairness: weighted in-flight work one tenant may have
    #: queued+running at once before admission refuses *that tenant*
    #: (others are unaffected).  A plain query charges weight 1.0
    #: against the cap; heavier operations pass a larger ``weight`` to
    #: :meth:`Scheduler.submit`.  ``None`` disables the cap.
    #: Cache/reuse no-ops never occupy a worker and are exempt.
    max_inflight_per_tenant: int | None = None
    #: Admission weight charged per ingest operation (append/upsert).
    #: Ingest rewrites shared state and triggers delta maintenance, so
    #: one ingest displaces several interactive queries under the
    #: per-tenant cap — a heavy ingestor exhausts its own budget long
    #: before it can monopolize the pool.
    ingest_weight: float = 2.0


@dataclass
class QueryTicket:
    """One admitted query: its future, lane, and timing telemetry."""

    future: Future
    lane: str
    tenant: str
    estimated_cost: float
    queued_at: float
    started_at: float | None = None
    finished_at: float | None = None
    #: Kernel-worker share leased from the budget while running.
    kernel_workers: int = 0
    #: Admission weight charged against the tenant's in-flight cap;
    #: released verbatim when the ticket finishes.
    weight: float = 1.0

    @property
    def queue_wait_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.queued_at

    @property
    def run_seconds(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def result(self, timeout: float | None = None):
        """Block until the query finishes; returns its result table."""
        return self.future.result(timeout=timeout)


@dataclass
class _TenantMetrics:
    queries: int = 0
    failures: int = 0
    queue_wait_seconds: float = 0.0
    run_seconds: float = 0.0
    plan_cache_hits: int = 0
    result_cache_hits: int = 0
    reuse_hits: int = 0
    by_lane: dict = field(default_factory=lambda: {"interactive": 0,
                                                   "heavy": 0})

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "failures": self.failures,
            "queue_wait_seconds": round(self.queue_wait_seconds, 6),
            "run_seconds": round(self.run_seconds, 6),
            "plan_cache_hits": self.plan_cache_hits,
            "result_cache_hits": self.result_cache_hits,
            "reuse_hits": self.reuse_hits,
            "by_lane": dict(self.by_lane),
        }


class Scheduler:
    """Bounded worker pool with cost-classified admission queues."""

    #: Fixed edges for the queue-wait histogram: sub-millisecond is an
    #: idle pool, 0.1 s+ means admission is absorbing a burst.
    QUEUE_WAIT_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)

    def __init__(self, config: SchedulerConfig | None = None,
                 budget: WorkerBudget | None = None,
                 registry: MetricsRegistry | None = None):
        self.config = config or SchedulerConfig()
        #: Shared machine budget; the pool size and every query's kernel
        #: share both derive from it.
        self.budget = budget or WorkerBudget(self.config.workers)
        self._lanes: dict[str, deque] = {"interactive": deque(),
                                         "heavy": deque()}
        self._mutex = threading.Lock()
        self._work_ready = threading.Condition(self._mutex)
        self._idle = threading.Condition(self._mutex)
        self._running = 0
        self._closed = False
        metrics = registry if registry is not None else MetricsRegistry()
        self._dispatches = metrics.counter(
            "scheduler_dispatches_total",
            help="queue pops handed to a worker")
        self._admitted = metrics.counter(
            "scheduler_admitted_total", help="queries admitted to a lane")
        self._rejected = metrics.counter(
            "scheduler_rejected_total",
            help="admissions refused (queue depth or tenant cap)")
        self._result_cache_noops = metrics.counter(
            "scheduler_result_cache_noops_total",
            help="result-cache hits served without occupying a worker")
        self._reuse_noops = metrics.counter(
            "scheduler_reuse_noops_total",
            help="subsumption-reuse hits served without a worker")
        self._queue_wait_hist = metrics.histogram(
            "scheduler_queue_wait_seconds",
            buckets=self.QUEUE_WAIT_BUCKETS,
            help="admission-to-dispatch wait per executed query")
        metrics.gauge("scheduler_running", fn=lambda: self._running,
                      help="queries currently on a worker")
        for lane_name in ("interactive", "heavy"):
            metrics.gauge(
                "scheduler_queued", labels={"lane": lane_name},
                fn=(lambda lane_=lane_name: len(self._lanes[lane_])),
                help="queries waiting per lane")
        #: queued+running admission weight per tenant (the fairness-cap
        #: gauge; a plain query contributes 1.0, ingest more)
        self._tenant_inflight: dict[str, float] = {}
        self._tenants: dict[str, _TenantMetrics] = {}
        self._queue_wait_total = 0.0
        self._queue_wait_max = 0.0
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-query-worker-{index}",
                             daemon=True)
            for index in range(self.budget.total)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def classify(self, estimated_cost: float) -> str:
        """Lane for a query with the given cost estimate."""
        if estimated_cost <= self.config.interactive_cost_threshold:
            return "interactive"
        return "heavy"

    def submit(self, run, estimated_cost: float,
               tenant: str = "default",
               plan_cache_hit: bool | None = None,
               weight: float = 1.0) -> QueryTicket:
        """Admit one query; returns its ticket (``.result()`` blocks).

        ``run`` is called on a worker thread as ``run(ticket, workers)``
        where ``workers`` is the kernel-worker share leased for this
        query.  ``weight`` is the charge against the tenant's in-flight
        cap (1.0 for a plain query; ingest passes
        ``config.ingest_weight``).  Raises :class:`AdmissionError` when
        the target lane is already at ``max_queue_depth``.
        """
        lane = self.classify(estimated_cost)
        ticket = QueryTicket(future=Future(), lane=lane, tenant=tenant,
                             estimated_cost=estimated_cost,
                             queued_at=time.perf_counter(),
                             weight=weight)
        with self._mutex:
            if self._closed:
                raise ServerError("scheduler is closed")
            queue = self._lanes[lane]
            if len(queue) >= self.config.max_queue_depth:
                self._rejected.inc()
                raise AdmissionError(
                    f"{lane} lane at max queue depth "
                    f"({self.config.max_queue_depth}); retry later")
            cap = self.config.max_inflight_per_tenant
            inflight = self._tenant_inflight.get(tenant, 0.0)
            if cap is not None and inflight + weight > cap:
                self._rejected.inc()
                raise AdmissionError(
                    f"tenant {tenant!r} at max in-flight work "
                    f"({inflight:g} of {cap}, requested weight "
                    f"{weight:g}); retry later")
            self._tenant_inflight[tenant] = inflight + weight
            self._admitted.inc()
            metrics = self._tenants.setdefault(tenant, _TenantMetrics())
            metrics.queries += 1
            metrics.by_lane[lane] += 1
            if plan_cache_hit:
                metrics.plan_cache_hits += 1
            queue.append((ticket, run))
            self._work_ready.notify()
        return ticket

    def complete_cached(self, result, tenant: str = "default",
                        estimated_cost: float = 0.0,
                        plan_cache_hit: bool | None = None,
                        kind: str = "result") -> QueryTicket:
        """Account a cache hit as an interactive-lane no-op.

        The result is already in hand (execution was skipped entirely),
        so the query never enters a queue or occupies a worker — but it
        *was* a served query, so tenant metrics count it, with zero
        queue wait and zero run time.  ``kind`` distinguishes exact
        result-cache hits (``"result"``) from semantic-subsumption
        residual answers (``"reuse"``).  Returns a ticket whose future
        is already resolved with ``result``.
        """
        now = time.perf_counter()
        ticket = QueryTicket(future=Future(), lane="interactive",
                             tenant=tenant, estimated_cost=estimated_cost,
                             queued_at=now, started_at=now, finished_at=now)
        with self._mutex:
            if self._closed:
                raise ServerError("scheduler is closed")
            metrics = self._tenants.setdefault(tenant, _TenantMetrics())
            if kind == "reuse":
                self._reuse_noops.inc()
                metrics.reuse_hits += 1
            else:
                self._result_cache_noops.inc()
                metrics.result_cache_hits += 1
            metrics.queries += 1
            metrics.by_lane["interactive"] += 1
            if plan_cache_hit:
                metrics.plan_cache_hits += 1
        ticket.future.set_result(result)
        return ticket

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    @staticmethod
    def pick_lane(dispatch: int, interactive_waiting: bool,
                  heavy_waiting: bool, heavy_pick_every: int) -> str | None:
        """The lane dispatch number ``dispatch`` (1-based) serves.

        Pure policy, extracted so the anti-starvation tests can drive it
        deterministically: prefer interactive work, but every
        ``heavy_pick_every``-th dispatch takes from the heavy lane even
        when interactive work is waiting.  ``None`` when both lanes are
        empty.
        """
        if not interactive_waiting and not heavy_waiting:
            return None
        prefer_heavy = heavy_waiting and (
            not interactive_waiting
            or dispatch % heavy_pick_every == 0)
        return "heavy" if prefer_heavy else "interactive"

    def _pop_locked(self) -> tuple[QueryTicket, object] | None:
        interactive = self._lanes["interactive"]
        heavy = self._lanes["heavy"]
        lane = self.pick_lane(self._dispatches.value + 1, bool(interactive),
                              bool(heavy), self.config.heavy_pick_every)
        if lane is None:
            return None
        self._dispatches.inc()
        return self._lanes[lane].popleft()

    def _worker_loop(self) -> None:
        while True:
            with self._mutex:
                item = self._pop_locked()
                while item is None and not self._closed:
                    self._work_ready.wait()
                    item = self._pop_locked()
                if item is None:   # closed and drained
                    return
                self._running += 1
            ticket, run = item
            if not ticket.future.set_running_or_notify_cancel():
                self._finish(ticket, cancelled=True)
                continue
            ticket.started_at = time.perf_counter()
            ticket.kernel_workers = self.budget.acquire()
            try:
                result = run(ticket, ticket.kernel_workers)
            except BaseException as error:  # noqa: BLE001 — future carries it
                ticket.finished_at = time.perf_counter()
                ticket.future.set_exception(error)
                self._finish(ticket, failed=True)
            else:
                ticket.finished_at = time.perf_counter()
                ticket.future.set_result(result)
                self._finish(ticket)
            finally:
                self.budget.release()

    def _finish(self, ticket: QueryTicket, failed: bool = False,
                cancelled: bool = False) -> None:
        with self._mutex:
            self._running -= 1
            self._release_tenant_locked(ticket.tenant, ticket.weight)
            if not cancelled:
                metrics = self._tenants.setdefault(ticket.tenant,
                                                   _TenantMetrics())
                metrics.queue_wait_seconds += ticket.queue_wait_seconds
                metrics.run_seconds += ticket.run_seconds
                if failed:
                    metrics.failures += 1
                self._queue_wait_total += ticket.queue_wait_seconds
                self._queue_wait_max = max(self._queue_wait_max,
                                           ticket.queue_wait_seconds)
                self._queue_wait_hist.observe(ticket.queue_wait_seconds)
            if (self._running == 0
                    and not any(self._lanes.values())):
                self._idle.notify_all()

    def _release_tenant_locked(self, tenant: str, weight: float) -> None:
        # 1e-9 epsilon: repeated float charges can leave dust that would
        # otherwise pin an idle tenant's entry (and its gauge) forever.
        remaining = self._tenant_inflight.get(tenant, 0.0) - weight
        if remaining > 1e-9:
            self._tenant_inflight[tenant] = remaining
        else:
            self._tenant_inflight.pop(tenant, None)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted query has finished.

        Returns ``False`` on timeout.  New submissions during the wait
        extend it — drain is a quiesce point, not a barrier.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while self._running or any(self._lanes.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def stats(self) -> dict:
        with self._mutex:
            queries = self._admitted.value
            return {
                "workers": self.budget.total,
                "admitted": queries,
                "rejected": self._rejected.value,
                "result_cache_noops": self._result_cache_noops.value,
                "reuse_noops": self._reuse_noops.value,
                "running": self._running,
                "queued": {lane: len(queue)
                           for lane, queue in self._lanes.items()},
                "tenant_inflight": dict(self._tenant_inflight),
                "queue_wait_seconds_total": round(self._queue_wait_total, 6),
                "queue_wait_seconds_max": round(self._queue_wait_max, 6),
                "queue_wait_seconds_mean": round(
                    self._queue_wait_total / queries, 6) if queries else 0.0,
                "tenants": {tenant: metrics.as_dict()
                            for tenant, metrics
                            in sorted(self._tenants.items())},
            }

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for queued queries."""
        with self._mutex:
            if self._closed:
                return
            if not wait:
                # cancel whatever has not started yet
                for queue in self._lanes.values():
                    while queue:
                        ticket, _ = queue.popleft()
                        ticket.future.cancel()
                        self._release_tenant_locked(ticket.tenant,
                                                    ticket.weight)
            self._closed = True
            self._work_ready.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
