"""Public serving-layer home of the cross-statement result cache.

The implementation lives in :mod:`repro.engine.result_cache` — it
depends only on the storage layer and the arena generation registry,
and the engine's shared state
(:class:`~repro.engine.state.EngineState`) constructs one, so the
engine layer must not import upward into ``repro.server``.  This module
re-exports it under the serving-layer namespace where the feature is
documented (``docs/serving.md`` § "Result cache").
"""

from repro.engine.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    CachedResult,
    ResultCache,
    ResultCacheStats,
    ResultKey,
    estimate_table_bytes,
    snapshot_table,
)

__all__ = [
    "CachedResult",
    "DEFAULT_RESULT_CACHE_BYTES",
    "ResultCache",
    "ResultCacheStats",
    "ResultKey",
    "estimate_table_bytes",
    "snapshot_table",
]
