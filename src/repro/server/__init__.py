"""Concurrent serving layer: multi-session engine server.

Turns the single-user engine into a query-serving system:

- :class:`~repro.server.server.EngineServer` owns one shared
  :class:`~repro.engine.state.EngineState` (tables, models, embedding
  arenas, vector-index cache, plan cache) and hands out lightweight
  :class:`~repro.server.server.ClientSession` facades that share it;
- :class:`~repro.server.plan_cache.PlanCache` lets repeated SQL skip
  the lexer/parser/binder/optimizer entirely;
- :class:`~repro.server.result_cache.ResultCache` lets a repeated
  statement skip *execution* entirely, returning a defensive snapshot
  of the previous result (versioned + generation-keyed invalidation);
- :class:`~repro.server.scheduler.Scheduler` admission-controls a
  bounded worker pool, classifying queries into interactive vs. heavy
  lanes by the cost model's estimate.

See ``docs/serving.md`` for the architecture and lock hierarchy.
"""

from repro.server.plan_cache import (
    DEFAULT_PLAN_CACHE_CAPACITY,
    CachedPlan,
    PlanCache,
    PlanCacheStats,
)
from repro.server.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    CachedResult,
    ResultCache,
    ResultCacheStats,
    ResultKey,
)
from repro.server.scheduler import (
    AdmissionError,
    QueryTicket,
    Scheduler,
    SchedulerConfig,
)
from repro.server.server import ClientSession, EngineServer

__all__ = [
    "AdmissionError",
    "CachedPlan",
    "CachedResult",
    "ClientSession",
    "DEFAULT_PLAN_CACHE_CAPACITY",
    "DEFAULT_RESULT_CACHE_BYTES",
    "EngineServer",
    "PlanCache",
    "PlanCacheStats",
    "QueryTicket",
    "ResultCache",
    "ResultCacheStats",
    "ResultKey",
    "Scheduler",
    "SchedulerConfig",
]
