"""EngineServer: shared engine state + plan cache + scheduler in one box.

The server owns exactly one :class:`~repro.engine.state.EngineState` —
catalog, models, per-model embedding arenas, vector-index cache, plan
cache — and hands out :class:`ClientSession` facades that *share* it.
What used to cost every session its own model load and cold caches now
warms once and serves everyone: a string embedded by any client is an
arena hit for all of them, an index built for one query is reused by
the next, and a statement planned once executes plan-cache-hot from
every connection.

Execution is admission-controlled: ``submit`` plans the statement in
the calling thread (plan-cache first), classifies it by the optimizer's
cost estimate, and enqueues it on the
:class:`~repro.server.scheduler.Scheduler`'s bounded pool.  Each
running query leases a kernel-worker share from the machine-wide
:class:`~repro.utils.parallel.WorkerBudget` and executes with a
per-query :class:`~repro.relational.physical.ExecutionContext`, so
concurrent queries share caches but never each other's telemetry.

Model-cache invalidation uses the striped read-write locks: queries
hold read stripes for every model their plan touches, so
:meth:`EngineServer.invalidate_model` (write stripe) can never clear an
arena out from under a running gather.
"""

from __future__ import annotations

import time
from contextlib import ExitStack

from repro.engine.profiler import QueryProfile
from repro.engine.session import PlannedStatement, Session
from repro.engine.state import EngineState, plan_models
from repro.errors import ServerError
from repro.obs.export import json_snapshot, prometheus_text
from repro.obs.trace import NULL_TRACE, AnyTrace, attach_profile_spans
from repro.optimizer.optimizer import OptimizerConfig
from repro.relational.physical import DEFAULT_BATCH_SIZE, build_physical
from repro.server.scheduler import QueryTicket, Scheduler, SchedulerConfig
from repro.storage.table import Table
from repro.utils.parallel import WorkerBudget


class EngineServer:
    """A concurrent, multi-session serving layer over one shared engine.

    ``parallelism`` budgets *both* the scheduler's worker pool and the
    kernel workers of every running query (one
    :class:`~repro.utils.parallel.WorkerBudget` backs both), defaulting
    to the CPUs visible to the process.  Use as a context manager or
    call :meth:`close` to stop the worker pool.
    """

    def __init__(self, seed: int = 7, load_default_model: bool = True,
                 optimizer_config: OptimizerConfig | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int | None = None,
                 plan_cache_capacity: int | None = None,
                 result_cache_bytes: int | None = None,
                 semantic_reuse: bool = True,
                 compiled_pipelines: str | None = None,
                 generic_plans: bool = True,
                 scheduler_config: SchedulerConfig | None = None,
                 trace_sample: float = 1.0,
                 trace_log: object = None):
        self.state = EngineState(
            seed=seed, load_default_model=load_default_model,
            optimizer_config=optimizer_config, batch_size=batch_size,
            parallelism=parallelism,
            plan_cache_capacity=plan_cache_capacity,
            result_cache_bytes=result_cache_bytes,
            semantic_reuse=semantic_reuse,
            compiled_pipelines=compiled_pipelines,
            generic_plans=generic_plans,
            trace_sample=trace_sample, trace_log=trace_log)
        config = scheduler_config or SchedulerConfig()
        if config.workers is None:
            # one budget backs the pool and the kernels; an explicit
            # scheduler worker count decouples them on purpose
            budget = WorkerBudget(parallelism)
        else:
            budget = WorkerBudget(config.workers)
        self.scheduler = Scheduler(config, budget=budget,
                                   registry=self.state.metrics_registry)
        self._closed = False
        # the admin session plans statements submitted without a client
        # session (server.sql / server.submit convenience paths)
        self._admin = ClientSession(self, tenant="admin")

    # ------------------------------------------------------------------
    # Registration (shared state, versioned invalidation)
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       replace: bool = False) -> None:
        """Register/replace a table for every client session.

        The catalog bumps its version, so every cached plan over the old
        contents stops matching — queries already executing may see
        either version (the engine's usual non-snapshot semantics).
        """
        self.state.catalog.register(name, table, replace=replace)

    def register_model(self, model, default: bool = False) -> None:
        """Register an embedding model for every client session."""
        self.state.models.register(model)
        if default:
            self.state.default_model_name = model.name

    def register_source(self, source) -> list[str]:
        """Federate a polystore source; returns registered table names."""
        self.state.federation.add_source(source)
        return self.state.federation.registered_tables(source.name)

    def append(self, name: str, rows, tenant: str = "admin",
               wait: bool = True):
        """Append rows through the scheduler; delta-maintains caches.

        Ingest is admitted like a query but charged
        ``SchedulerConfig.ingest_weight`` against the tenant's in-flight
        cap (a mutation holds the engine-wide ingest lock and re-executes
        delta plans, so it displaces more capacity than one read), and
        classified heavy so a burst of appends cannot starve the
        interactive lane.  Returns the
        :class:`~repro.ingest.IngestReport` when ``wait`` is true, the
        :class:`QueryTicket` otherwise.
        """
        self._check_open()
        ticket = self.scheduler.submit(
            lambda ticket, workers: self.state.ingest.append(name, rows),
            # always heavy-lane: strictly above the interactive threshold
            estimated_cost=self.scheduler.config
            .interactive_cost_threshold + 1.0,
            tenant=tenant, weight=self.scheduler.config.ingest_weight)
        return ticket.result() if wait else ticket

    def upsert(self, name: str, rows, key: str, tenant: str = "admin",
               wait: bool = True):
        """Insert-or-replace by ``key`` through the scheduler.

        Same admission treatment as :meth:`append` (heavy lane,
        ``ingest_weight`` charge).  Returns the report or the ticket.
        """
        self._check_open()
        ticket = self.scheduler.submit(
            lambda ticket, workers: self.state.ingest.upsert(name, rows,
                                                             key),
            estimated_cost=self.scheduler.config
            .interactive_cost_threshold + 1.0,
            tenant=tenant, weight=self.scheduler.config.ingest_weight)
        return ticket.result() if wait else ticket

    def invalidate_model(self, model_name: str) -> None:
        """Clear a model's embedding arena (and, transitively, its
        vector-index entries via generation retirement).

        Takes the model's write stripe, so it blocks until no running
        query holds the model's read stripe — an arena is never cleared
        mid-gather.
        """
        with self.state.model_locks.write(model_name):
            cache = self.state.embedding_caches.get(model_name)
            if cache is not None:
                cache.clear()

    def invalidate_results(self) -> int:
        """Drop every cached result snapshot; returns the count dropped.

        The result cache invalidates itself lazily on catalog/model
        changes; this is the explicit admin override for mutations the
        engine cannot see — e.g. a table's arrays modified in place
        (tables are immutable by convention, not enforcement).  The
        subsumption registry is cleared with it: its entries only point
        at the snapshots dropped here.
        """
        if self.state.result_cache is None:
            return 0
        if self.state.reuse_registry is not None:
            self.state.reuse_registry.clear()
        return self.state.result_cache.invalidate()

    # ------------------------------------------------------------------
    # Sessions and execution
    # ------------------------------------------------------------------
    def session(self, tenant: str = "default",
                batch_size: int | None = None) -> "ClientSession":
        """A lightweight client session sharing this server's state."""
        self._check_open()
        return ClientSession(self, tenant=tenant, batch_size=batch_size)

    def submit(self, text: str, session: "ClientSession | None" = None,
               tenant: str | None = None) -> QueryTicket:
        """Plan ``text`` now, queue its execution; returns the ticket.

        Planning (plan-cache lookup, or parse/bind/optimize on a miss)
        happens in the calling thread so the admission decision can use
        the optimizer's cost estimate; execution happens on the worker
        pool.  ``ticket.result()`` blocks for the table.
        """
        self._check_open()
        client = session if session is not None else self._admin
        tenant = tenant if tenant is not None else client.tenant
        # inline sample check — the result-cache hit path below is tens
        # of microseconds, so with tracing disabled it pays one branch
        # here, not a start() call (see the bench's no-op overhead gate)
        tracer = self.state.tracer
        trace: AnyTrace = tracer.start("statement", tenant=tenant) \
            if tracer.sample > 0.0 else NULL_TRACE
        self.state.statements_total.inc()
        planned = client.plan_for(text, trace=trace)
        # result cache before admission: a hit skips execution entirely,
        # so it never competes for a worker — the scheduler records it
        # as an interactive-lane no-op.  The key (catalog version +
        # model/arena/index generations) is captured here, pre-execution,
        # and reused for the post-execution store on a miss.
        key = self.state.result_key(planned)
        started = time.perf_counter()
        if trace.enabled:
            with trace.span("result_cache.probe") as probe:
                cached = self.state.fetch_result(key)
                probe.annotate(hit=cached is not None,
                               cacheable=key is not None)
        else:
            cached = self.state.fetch_result(key)
        if cached is not None:
            ticket = self.scheduler.complete_cached(
                cached, tenant=tenant,
                estimated_cost=planned.estimated_cost,
                plan_cache_hit=planned.cache_hit)
            profile = QueryProfile(
                total_seconds=time.perf_counter() - started)
            profile.plan_cache_hit = planned.cache_hit
            profile.result_cache_hit = True
            profile.lane = ticket.lane
            profile.tenant = ticket.tenant
            if trace.enabled:
                self._finish_submit(trace, profile)
            client.last_profile = profile
            return ticket
        # subsumption next: a containing cached statement answers the
        # refinement with a cheap residual (refilter/truncate/project of
        # its snapshot) in the calling thread — an interactive-lane
        # no-op that never competes for a worker
        with trace.span("reuse.probe") as probe:
            reused = self.state.fetch_reuse(planned, key)
            probe.annotate(hit=reused is not None)
        if reused is not None:
            ticket = self.scheduler.complete_cached(
                reused, tenant=tenant,
                estimated_cost=planned.estimated_cost,
                plan_cache_hit=planned.cache_hit, kind="reuse")
            profile = QueryProfile(
                total_seconds=time.perf_counter() - started)
            profile.plan_cache_hit = planned.cache_hit
            profile.result_cache_hit = False
            profile.reuse_hit = True
            profile.lane = ticket.lane
            profile.tenant = ticket.tenant
            self._finish_submit(trace, profile)
            client.last_profile = profile
            return ticket

        def run(ticket: QueryTicket, workers: int) -> Table:
            # the trace rides the closure onto the worker thread —
            # explicit propagation, never a thread-local, so the pool
            # cannot leak spans between concurrent statements
            return self._execute(client, planned, ticket, workers, key,
                                 trace)

        return self.scheduler.submit(
            run, estimated_cost=planned.estimated_cost, tenant=tenant,
            plan_cache_hit=planned.cache_hit)

    def _finish_submit(self, trace: AnyTrace,
                       profile: QueryProfile) -> None:
        """Seal a statement trace and pin it to the profile."""
        trace.annotate(
            lane=profile.lane, tenant=profile.tenant,
            plan_cache_hit=profile.plan_cache_hit,
            result_cache_hit=profile.result_cache_hit,
            reuse_hit=profile.reuse_hit)
        self.state.tracer.finish(trace)
        if trace.enabled:
            profile.trace = trace

    def sql(self, text: str, tenant: str = "admin") -> Table:
        """Blocking convenience: submit and wait for the result."""
        return self.submit(text, tenant=tenant).result()

    def _arena_counters(self) -> dict[str, tuple[int, int, int]]:
        """(hits, misses, tokens_embedded) per model, for delta-snapshots.

        Iterates a ``.copy()`` of the shared dict: ``cache_for`` on a
        concurrent query may insert a new model's cache mid-iteration,
        and a plain dict iteration would raise RuntimeError (the copy
        is one C-level call, atomic under the GIL).
        """
        return {name: (cache.hits, cache.misses,
                       cache.model.tokens_embedded)
                for name, cache
                in self.state.embedding_caches.copy().items()}

    def _execute(self, client: "ClientSession", planned: PlannedStatement,
                 ticket: QueryTicket, workers: int,
                 result_key=None, trace: AnyTrace | None = None) -> Table:
        """Run one admitted query on a worker thread."""
        trace = trace if trace is not None else NULL_TRACE
        # the queue wait was measured by the scheduler's clock; graft
        # it in as a pre-measured span rather than re-timing it
        trace.span_at("scheduler.queue", ticket.queue_wait_seconds,
                      lane=ticket.lane, tenant=ticket.tenant,
                      workers=workers)
        # fresh context per query: shared caches, private metrics dict,
        # kernel parallelism = this query's leased share of the budget
        context = self.state.make_context(
            parallelism=workers, batch_size=client.context.batch_size)
        before = self._arena_counters()
        with ExitStack() as stack:
            # hold read stripes for every model the plan embeds with
            # (deduped, bank order — see StripedRWLock.stripes_for)
            for stripe in self.state.model_locks.stripes_for(
                    plan_models(planned.plan)):
                stack.enter_context(stripe.read())
            started = time.perf_counter()
            with trace.span("execute") as exec_span:
                root = build_physical(planned.plan, context)
                result = root.execute()
            elapsed = time.perf_counter() - started
        context.record_semantic_metrics()
        # the shared arenas accumulate counters across every client, so
        # a profile built from their absolutes would report the whole
        # server's history; delta-snapshot instead.  Concurrent queries
        # interleave their deltas, so under contention the attribution
        # is approximate — but bounded by what actually ran while this
        # query did, never the server's lifetime.
        profile = QueryProfile.from_tree(root, elapsed)
        for name, (hits, misses, tokens) in self._arena_counters().items():
            hits0, misses0, tokens0 = before.get(name, (0, 0, 0))
            profile.cache_hits += hits - hits0
            profile.cache_misses += misses - misses0
            profile.tokens_embedded += tokens - tokens0
        for cache in list(self.state.embedding_caches.values()):
            profile.arena_rows += cache.rows      # gauges, not counters
            profile.arena_bytes += cache.nbytes
        profile.plan_cache_hit = planned.cache_hit
        profile.queue_wait_seconds = ticket.queue_wait_seconds
        profile.lane = ticket.lane
        profile.tenant = ticket.tenant
        # store_result snapshots the full (aux-carrying) result and
        # returns the caller-visible table with reuse columns stripped
        result = self.state.store_result(result_key, result, planned)
        if result_key is not None:
            profile.result_cache_hit = False
            profile.reuse_hit = False
        self.state.statement_seconds.observe(elapsed)
        for op in profile.operators:
            self.state.operator_seconds.observe(op.seconds)
        attach_profile_spans(exec_span, profile)
        self._finish_submit(trace, profile)
        client.last_profile = profile
        return result

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """One aggregate metrics snapshot across every subsystem."""
        return {
            "plan_cache": self.state.plan_cache.stats().as_dict(),
            "result_cache": (self.state.result_cache.stats().as_dict()
                             if self.state.result_cache is not None
                             else None),
            "reuse": (self.state.reuse_registry.stats().as_dict()
                      if self.state.reuse_registry is not None
                      else None),
            "kernels": self.state.kernel_cache.stats(),
            "ingest": self.state.ingest.stats(),
            "scheduler": self.scheduler.stats(),
            "embedding_arenas": self.state.arena_stats(),
            "vector_index_cache": self.state.index_cache.stats(),
            "catalog_version": self.state.catalog.version,
        }

    def export_prometheus(self) -> str:
        """Every instrument in Prometheus text exposition format.

        Reads the same registry the ``metrics()`` dict is built from —
        the subsystem ``stats()`` methods read their registered
        instruments — so the two surfaces agree by construction.
        """
        return prometheus_text(self.state.metrics_registry)

    def export_json(self) -> dict[str, float]:
        """Flat ``{name{labels}: value}`` snapshot of every instrument."""
        return json_snapshot(self.state.metrics_registry)

    def traces(self) -> list:
        """Recently completed statement traces (bounded ring)."""
        return self.state.tracer.completed()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every admitted query has finished."""
        return self.scheduler.drain(timeout=timeout)

    def close(self, wait: bool = True) -> None:
        """Stop the worker pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close(wait=wait)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServerError("server is closed")


class ClientSession(Session):
    """A session facade sharing an :class:`EngineServer`'s state.

    Construction is cheap — no model load, no new caches — because all
    heavy state lives in the server.  ``sql`` routes through the
    server's plan cache *and* scheduler (admission control applies);
    builder queries and ``execute`` run inline in the calling thread,
    same as a stand-alone session.
    """

    def __init__(self, server: EngineServer, tenant: str = "default",
                 batch_size: int | None = None):
        super().__init__(shared_state=server.state, batch_size=batch_size
                         or server.state.batch_size)
        self.server = server
        self.tenant = tenant

    def sql(self, text: str, optimize: bool = True) -> Table:
        """Execute through the server's scheduler (blocking)."""
        if not optimize:
            # uncached, unscheduled debug path — identical to Session
            return super().sql(text, optimize=False)
        return self.submit(text).result()

    def submit(self, text: str) -> QueryTicket:
        """Non-blocking execute; returns the scheduler ticket."""
        return self.server.submit(text, session=self)

    def append(self, name: str, rows):
        """Append through the server (admission-controlled, weighted)."""
        return self.server.append(name, rows, tenant=self.tenant)

    def upsert(self, name: str, rows, key: str):
        """Upsert through the server (admission-controlled, weighted)."""
        return self.server.upsert(name, rows, key, tenant=self.tenant)
