"""Public serving-layer home of the plan cache.

The implementation lives in :mod:`repro.engine.plan_cache` — it depends
only on :mod:`repro.engine.sql.canonical`, and the engine's shared
state (:class:`~repro.engine.state.EngineState`) constructs one, so the
engine layer must not import upward into ``repro.server``.  This module
re-exports it under the serving-layer namespace where the feature is
documented.
"""

from repro.engine.plan_cache import (
    DEFAULT_PLAN_CACHE_CAPACITY,
    CachedPlan,
    PlanCache,
    PlanCacheStats,
)

__all__ = [
    "CachedPlan",
    "DEFAULT_PLAN_CACHE_CAPACITY",
    "PlanCache",
    "PlanCacheStats",
]
