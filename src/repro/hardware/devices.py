"""Device and interconnect profiles (analytical models).

Throughputs are in abstract cost-units/second matched to the optimizer's
:class:`~repro.optimizer.cost.CostParams` units; ratios between devices
follow public figures (GPU ~ 20-50x CPU on dense model math, TPU higher
still on inference but poor at general relational work, NPU efficient but
small).  The numbers matter only through the *decisions* they induce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import HardwareError


class DeviceKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"
    TPU = "tpu"
    NPU = "npu"
    STORAGE = "storage"


@dataclass(frozen=True)
class Device:
    """A compute (or storage) device.

    ``relational_speed`` / ``model_speed`` convert the cost model's cpu /
    model cost units into seconds; ``startup_seconds`` is paid once per
    query per device used; ``memory_bytes`` bounds operator state.
    """

    name: str
    kind: DeviceKind
    relational_speed: float
    model_speed: float
    memory_bytes: int
    startup_seconds: float = 0.0

    def __post_init__(self):
        if self.relational_speed <= 0 and self.model_speed <= 0:
            raise HardwareError(f"device {self.name} can execute nothing")

    def execution_seconds(self, cpu_cost: float, model_cost: float) -> float:
        """Seconds to execute a (cpu, model) cost pair on this device."""
        seconds = 0.0
        if cpu_cost > 0:
            if self.relational_speed <= 0:
                return float("inf")
            seconds += cpu_cost / self.relational_speed
        if model_cost > 0:
            if self.model_speed <= 0:
                return float("inf")
            seconds += model_cost / self.model_speed
        return seconds


@dataclass(frozen=True)
class Link:
    """A bidirectional interconnect between two devices."""

    a: str
    b: str
    bandwidth_bytes_per_s: float
    latency_seconds: float = 10e-6

    def transfer_seconds(self, n_bytes: float) -> float:
        return self.latency_seconds + n_bytes / self.bandwidth_bytes_per_s

    def endpoints(self) -> frozenset:
        return frozenset((self.a, self.b))


# ----------------------------------------------------------------------
# Profiles (factory functions so each topology owns distinct instances)
# ----------------------------------------------------------------------
_GB = 1024**3


def xeon_cpu(name: str = "cpu0") -> Device:
    """2-socket server CPU: baseline for both compute classes."""
    return Device(name, DeviceKind.CPU, relational_speed=2.0e8,
                  model_speed=2.0e8, memory_bytes=384 * _GB,
                  startup_seconds=0.0)


def a100_gpu(name: str = "gpu0") -> Device:
    """Datacenter GPU: ~25x on model math, ~4x on scans/joins, has
    kernel-launch/runtime startup."""
    return Device(name, DeviceKind.GPU, relational_speed=8.0e8,
                  model_speed=5.0e9, memory_bytes=80 * _GB,
                  startup_seconds=0.30)


def tpu_v4(name: str = "tpu0") -> Device:
    """Inference accelerator: enormous model throughput, weak at general
    relational processing (ref [26] shows it is possible, not efficient)."""
    return Device(name, DeviceKind.TPU, relational_speed=1.0e8,
                  model_speed=2.0e10, memory_bytes=32 * _GB,
                  startup_seconds=0.80)


def mobile_npu(name: str = "npu0") -> Device:
    """Phone-class neural engine: efficient but small and host-bound."""
    return Device(name, DeviceKind.NPU, relational_speed=2.0e7,
                  model_speed=6.0e8, memory_bytes=8 * _GB,
                  startup_seconds=0.05)


def nvme(name: str = "nvme0") -> Device:
    """NVMe storage endpoint (source of scans in the simulator)."""
    return Device(name, DeviceKind.STORAGE, relational_speed=1.0e7,
                  model_speed=0.0, memory_bytes=4096 * _GB)


def pcie3(a: str, b: str) -> Link:
    return Link(a, b, bandwidth_bytes_per_s=12.0e9, latency_seconds=5e-6)


def pcie4(a: str, b: str) -> Link:
    return Link(a, b, bandwidth_bytes_per_s=24.0e9, latency_seconds=5e-6)


def nvlink(a: str, b: str) -> Link:
    return Link(a, b, bandwidth_bytes_per_s=250.0e9, latency_seconds=2e-6)


def infiniband(a: str, b: str) -> Link:
    return Link(a, b, bandwidth_bytes_per_s=12.5e9, latency_seconds=1.5e-6)


def ethernet_10g(a: str, b: str) -> Link:
    """Commodity 10 GbE — slow enough that compression can pay (§VI)."""
    return Link(a, b, bandwidth_bytes_per_s=1.2e9, latency_seconds=50e-6)
