"""Cost-based operator placement over a hardware topology.

Tree dynamic programming: for every plan node and candidate device, the
best completion time is the node's execution time on that device plus, for
each child, the cheapest (child completion on its device + transfer of the
child's output + model-state shipping when a model operator first lands on
an accelerator).  Optimal for tree-shaped plans when device contention is
ignored; the :mod:`simulator` then evaluates the chosen placement with
contention to produce the reported makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.topology import HardwareTopology
from repro.optimizer.cost import CostModel
from repro.optimizer.properties import traits_of
from repro.relational.logical import LogicalPlan
from repro.storage.schema import Schema
from repro.storage.types import DataType

#: Estimated bytes per value for row-size estimates.
_TYPE_BYTES = {
    DataType.INT64: 8,
    DataType.FLOAT64: 8,
    DataType.BOOL: 1,
    DataType.DATE: 8,
    DataType.STRING: 24,
}


def estimate_row_bytes(schema: Schema) -> int:
    """Rough serialized width of one row of ``schema``."""
    return sum(_TYPE_BYTES[field.dtype] for field in schema.fields) or 8


@dataclass
class Placement:
    """A device assignment per plan node (keyed by ``id(node)``)."""

    assignment: dict[int, str] = field(default_factory=dict)
    estimated_seconds: float = 0.0

    def device_of(self, node: LogicalPlan) -> str:
        return self.assignment[id(node)]

    def devices_used(self) -> set[str]:
        return set(self.assignment.values())

    def describe(self, plan: LogicalPlan) -> str:
        lines = []

        def visit(node: LogicalPlan, indent: int) -> None:
            device = self.assignment.get(id(node), "?")
            lines.append("  " * indent + f"{node.label()}  @{device}")
            for child in node.children:
                visit(child, indent + 1)

        visit(plan, 0)
        return "\n".join(lines)


class PlacementOptimizer:
    """Chooses a device per operator to minimize modeled completion time."""

    def __init__(self, topology: HardwareTopology, cost_model: CostModel):
        self.topology = topology
        self.cost_model = cost_model

    def place(self, plan: LogicalPlan) -> Placement:
        """Optimal (contention-free) placement via tree DP."""
        devices = self.topology.compute_devices
        best: dict[tuple[int, str], float] = {}
        choice: dict[tuple[int, str], list[str]] = {}

        def solve(node: LogicalPlan) -> None:
            for child in node.children:
                solve(child)
            node_cost = self.cost_model.node_cost(node)
            traits = traits_of(node)
            output_bytes = self._output_bytes(node)
            for device in devices:
                execution = device.execution_seconds(node_cost.cpu,
                                                     node_cost.model)
                if traits.compute_class == "model":
                    execution += self._model_ship_seconds(traits, device.name)
                total = execution + device.startup_seconds
                child_devices: list[str] = []
                for child in node.children:
                    child_bytes = self._output_bytes(child)
                    options = []
                    for child_device in devices:
                        base = best[(id(child), child_device.name)]
                        move = self.topology.transfer_seconds(
                            child_device.name, device.name, child_bytes)
                        options.append((base + move, child_device.name))
                    best_child = min(options)
                    total += best_child[0]
                    child_devices.append(best_child[1])
                best[(id(node), device.name)] = total
                choice[(id(node), device.name)] = child_devices

        solve(plan)
        # Root must deliver results to the host.
        root_bytes = self._output_bytes(plan)
        final_options = []
        for device in devices:
            deliver = self.topology.transfer_seconds(
                device.name, self.topology.host, root_bytes)
            final_options.append((best[(id(plan), device.name)] + deliver,
                                  device.name))
        total_seconds, root_device = min(final_options)

        placement = Placement(estimated_seconds=total_seconds)

        def assign(node: LogicalPlan, device: str) -> None:
            placement.assignment[id(node)] = device
            for child, child_device in zip(node.children,
                                           choice[(id(node), device)]):
                assign(child, child_device)

        assign(plan, root_device)
        return placement

    def place_all_on(self, plan: LogicalPlan, device_name: str) -> Placement:
        """Degenerate policy: every operator on one device."""
        placement = Placement()
        for node in plan.walk():
            placement.assignment[id(node)] = device_name
        return placement

    def place_model_ops_on(self, plan: LogicalPlan,
                           accelerator: str) -> Placement:
        """Static policy: model operators on the accelerator, rest on host."""
        placement = Placement()
        for node in plan.walk():
            traits = traits_of(node)
            device = accelerator if traits.compute_class == "model" \
                else self.topology.host
            placement.assignment[id(node)] = device
        return placement

    # ------------------------------------------------------------------
    def _output_bytes(self, node: LogicalPlan) -> float:
        rows = self.cost_model.estimator.estimate(node)
        return rows * estimate_row_bytes(node.schema)

    def _model_ship_seconds(self, traits, device_name: str) -> float:
        if device_name == self.topology.host:
            return 0.0
        return self.topology.transfer_seconds(
            self.topology.host, device_name, traits.model_state_bytes)
