"""Data-movement planning: compress-before-shipping decisions (§VI).

"Obvious questions such as data compression before sending the data over
the interconnect for processing come to mind" — the planner answers them
with arithmetic: for each available codec, total time =
compress + transfer(compressed bytes) + decompress; pick the minimum.
Fast links (NVLink) make compression pointless; slow links (PCIe 3,
InfiniBand across nodes) favour it for large payloads — a crossover the
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import HardwareTopology


@dataclass(frozen=True)
class CompressionCodec:
    """An analytical codec model.

    ``setup_seconds`` is the fixed per-transfer cost (context/dictionary
    initialization, pipeline spin-up) that makes the compress-or-not
    decision size-dependent: tiny payloads never amortize it.
    """

    name: str
    ratio: float                      # compressed = bytes / ratio
    compress_bytes_per_s: float
    decompress_bytes_per_s: float
    setup_seconds: float = 0.0

    def compress_seconds(self, n_bytes: float) -> float:
        return self.setup_seconds + n_bytes / self.compress_bytes_per_s

    def decompress_seconds(self, n_bytes: float) -> float:
        return n_bytes / self.decompress_bytes_per_s


#: No-op codec: raw transfer.
RAW = CompressionCodec("raw", ratio=1.0, compress_bytes_per_s=float("inf"),
                       decompress_bytes_per_s=float("inf"))
#: LZ4-class: light ratio, very fast (multi-core figures).
LZ4_CLASS = CompressionCodec("lz4-class", ratio=2.2,
                             compress_bytes_per_s=5.0e9,
                             decompress_bytes_per_s=8.0e9,
                             setup_seconds=2e-3)
#: Zstd-class: better ratio, slower.
ZSTD_CLASS = CompressionCodec("zstd-class", ratio=3.4,
                              compress_bytes_per_s=1.5e9,
                              decompress_bytes_per_s=4.0e9,
                              setup_seconds=8e-3)

DEFAULT_CODECS = (RAW, LZ4_CLASS, ZSTD_CLASS)


@dataclass(frozen=True)
class TransferPlan:
    """Chosen codec and the resulting end-to-end transfer time."""

    source: str
    destination: str
    n_bytes: float
    codec: CompressionCodec
    seconds: float

    @property
    def compressed(self) -> bool:
        return self.codec.name != "raw"


class TransferPlanner:
    """Chooses per-transfer compression over a hardware topology."""

    def __init__(self, topology: HardwareTopology,
                 codecs: tuple[CompressionCodec, ...] = DEFAULT_CODECS):
        self.topology = topology
        self.codecs = codecs

    def plan(self, source: str, destination: str,
             n_bytes: float) -> TransferPlan:
        """Cheapest (codec, time) for moving ``n_bytes``."""
        best: TransferPlan | None = None
        for codec in self.codecs:
            wire_bytes = n_bytes / codec.ratio
            seconds = (codec.compress_seconds(n_bytes)
                       + self.topology.transfer_seconds(source, destination,
                                                        wire_bytes)
                       + codec.decompress_seconds(wire_bytes))
            if best is None or seconds < best.seconds:
                best = TransferPlan(source, destination, n_bytes, codec,
                                    seconds)
        assert best is not None
        return best

    def crossover_bytes(self, source: str, destination: str,
                        low: float = 1.0, high: float = 1e12) -> float:
        """Approximate payload size where compression starts winning.

        Binary search on the raw-vs-best-codec decision; returns ``high``
        when compression never wins on this link (e.g. NVLink).
        """
        if self.plan(source, destination, high).codec.name == "raw":
            return high
        if self.plan(source, destination, low).compressed:
            return low
        for _ in range(64):
            middle = (low + high) / 2.0
            if self.plan(source, destination, middle).compressed:
                high = middle
            else:
                low = middle
        return high
