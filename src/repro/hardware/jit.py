"""Just-in-time kernel specialization (paper §VI).

"Just-in-time code generation using frameworks such as LLVM enables
specializing the code paths" — the Python analogue: compile an expression
tree (or a whole Scan→Filter→Project pipeline) into a flat function via
source generation + ``compile``, removing the per-batch interpretive walk
over the tree.  The compile cost is real and measured, so benchmarks can
show the classic JIT trade-off: a fixed compilation overhead bought back
on every subsequent batch.

Two backends produce bit-identical results:

- **python** (always available) — generated straight-line NumPy source,
  ``compile()``-ed and ``exec``-ed into a private namespace;
- **numba** (optional) — the numeric inner section of the same generated
  source wrapped in ``numba.njit`` (IEEE semantics, no fastmath), used
  only when the module imports and every bound column is numeric.  Any
  failure at wrap time silently falls back to the python backend.

Soundness rules: literal values are bound as *namespace constants*, never
``repr()``-ed into source (a NumPy scalar's repr like ``np.float64(3.5)``
would not resolve inside the kernel namespace and would emit broken
source); :class:`~repro.relational.expressions.Func` nodes — built-ins
and registered UDFs alike — are rejected up front (a UDF can be replaced
or unregistered after compilation, so inlining a snapshot of it is
unsound).  Callers should consult :func:`jit_supported` and fall back to
the interpreted path instead of catching compile errors.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExpressionError
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
)
from repro.storage.table import Table

_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

try:  # optional accelerator backend; the pure-NumPy path is always on
    import numba  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - environment without numba
    numba = None
    NUMBA_AVAILABLE = False

#: Backends ``compile_pipeline`` accepts.  ``auto`` resolves to numba
#: when importable *and* the pipeline is numeric-only, else python.
BACKENDS = ("auto", "python", "numba")


# ----------------------------------------------------------------------
# Support detection
# ----------------------------------------------------------------------
#: Expression node types the code generator can soundly emit.
_SUPPORTED_NODES = (ColumnRef, Literal, Compare, And, Or, Not, Arith,
                    InList)


def jit_supported(expr: Expr) -> bool:
    """Whether ``expr`` can be soundly compiled.

    ``False`` for any tree containing a :class:`Func` (built-in or UDF —
    neither can be inlined without freezing a function registry snapshot
    into the kernel) or an expression type the generator does not know.
    Callers use this to *fall back* to the interpreted path; compiling an
    unsupported tree raises :class:`~repro.errors.ExpressionError` before
    any source is emitted.
    """
    if isinstance(expr, Func):
        return False
    if not isinstance(expr, _SUPPORTED_NODES):
        return False
    return all(jit_supported(child) for child in expr.children())


def _check_supported(expr: Expr) -> None:
    if isinstance(expr, Func):
        raise ExpressionError(
            f"JIT specialization does not support function {expr.name!r} "
            "(built-in or UDF calls cannot be soundly inlined; use the "
            "interpreted path)"
        )
    if not isinstance(expr, _SUPPORTED_NODES):
        raise ExpressionError(
            f"cannot specialize {type(expr).__name__}")
    for child in expr.children():
        _check_supported(child)


# ----------------------------------------------------------------------
# Shared emit machinery
# ----------------------------------------------------------------------
class _Emitter:
    """Generates straight-line source; literals become namespace
    constants (``_k0, _k1, ...``) so arbitrary values — NumPy scalars,
    strings with quotes, dates already int-coerced — can never produce
    invalid source."""

    def __init__(self):
        self.constants: dict[str, object] = {}
        self._counter = itertools.count()

    def bind_constant(self, value) -> str:
        name = f"_k{next(self._counter)}"
        self.constants[name] = value
        return name

    def emit(self, expr: Expr, column_vars: dict[str, str]) -> str:
        if isinstance(expr, ColumnRef):
            return column_vars[expr.name]
        if isinstance(expr, Literal):
            return self.bind_constant(expr.value)
        if isinstance(expr, Compare):
            return (f"_asbool({self.emit(expr.left, column_vars)} "
                    f"{_OPS[expr.op]} "
                    f"{self.emit(expr.right, column_vars)})")
        if isinstance(expr, And):
            return (f"({self.emit(expr.left, column_vars)} & "
                    f"{self.emit(expr.right, column_vars)})")
        if isinstance(expr, Or):
            return (f"({self.emit(expr.left, column_vars)} | "
                    f"{self.emit(expr.right, column_vars)})")
        if isinstance(expr, Not):
            return f"(~_asbool({self.emit(expr.operand, column_vars)}))"
        if isinstance(expr, Arith):
            return (f"({self.emit(expr.left, column_vars)} {expr.op} "
                    f"{self.emit(expr.right, column_vars)})")
        if isinstance(expr, InList):
            allowed = self.bind_constant(frozenset(expr.values))
            return (f"_in_list({self.emit(expr.operand, column_vars)}, "
                    f"{allowed})")
        raise ExpressionError(f"cannot specialize {type(expr).__name__}")


def _asbool(x):
    return (x if getattr(x, "dtype", None) == np.dtype(bool)
            else np.asarray(x, dtype=bool))


def _asobj(x):
    return np.asarray(x, dtype=object)


def _in_list(values, allowed: frozenset) -> np.ndarray:
    return np.asarray([value in allowed for value in values], dtype=bool)


def _fill(n: int, value) -> np.ndarray:
    """Replicates ``Literal.evaluate`` for a top-level projection item."""
    if isinstance(value, str):
        return np.asarray([value] * n, dtype=object)
    return np.full(n, value)


_BASE_NAMESPACE = {
    "_np": np,
    "_asbool": _asbool,
    "_asobj": _asobj,
    "_in_list": _in_list,
    "_fill": _fill,
}


def _exec_source(source: str) -> dict:
    namespace = dict(_BASE_NAMESPACE)
    code = compile(source, filename="<repro-jit>", mode="exec")
    exec(code, namespace)  # noqa: S102 - deliberate codegen
    return namespace


# ----------------------------------------------------------------------
# Single-expression kernels (the pre-existing tier)
# ----------------------------------------------------------------------
@dataclass
class SpecializedKernel:
    """A compiled predicate/projection kernel."""

    source: str
    function: object
    compile_seconds: float

    def __call__(self, batch: Table) -> np.ndarray:
        return self.function(batch)  # type: ignore[operator]


def compile_predicate(expr: Expr) -> SpecializedKernel:
    """Compile ``expr`` into a specialized batch kernel.

    The generated source binds column arrays to locals once, then runs one
    straight-line NumPy expression — the code-shape a query compiler emits.
    Raises :class:`~repro.errors.ExpressionError` (before emitting any
    source) for trees :func:`jit_supported` rejects.
    """
    started = time.perf_counter()
    _check_supported(expr)
    emitter = _Emitter()
    columns = sorted(expr.columns())
    bindings = "\n    ".join(
        f"_c{i} = batch.column({name!r})" for i, name in enumerate(columns)
    )
    column_vars = {name: f"_c{i}" for i, name in enumerate(columns)}
    body = emitter.emit(expr, column_vars)
    source = (
        "def _kernel(batch):\n"
        f"    {bindings if bindings else 'pass'}\n"
        f"    return _asbool({body})\n"
    )
    namespace = _exec_source(source)
    namespace.update(emitter.constants)
    function = namespace["_kernel"]
    function.__globals__.update(emitter.constants)
    elapsed = time.perf_counter() - started
    return SpecializedKernel(source=source, function=function,
                             compile_seconds=elapsed)


# ----------------------------------------------------------------------
# Fused pipeline kernels
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineSpec:
    """Backend-agnostic description of one fusible pipeline.

    ``ops`` is an ordered tuple of segments, innermost first:

    - ``("filter", (pred, pred, ...))`` — consecutive Filter nodes
      merged into one conjunction, applied as a single boolean-index
      pass;
    - ``("project", ((expr, alias), ...))`` — a projection evaluated on
      the already-masked arrays.

    ``input_columns`` are the batch columns of the pipeline's input;
    ``output`` is the final schema as ``(name, is_string)`` pairs (the
    string flag reproduces ``ProjectOp``'s object-dtype coercion).
    """

    input_columns: tuple[str, ...]
    ops: tuple[tuple, ...]
    output: tuple[tuple[str, bool], ...]


@dataclass
class PipelineKernel:
    """One compiled pipeline: batch in, output column arrays out."""

    source: str
    function: object
    compile_seconds: float
    backend: str
    output_names: tuple[str, ...]
    #: How often the kernel ran (telemetry; benign under races).
    calls: int = field(default=0)

    def __call__(self, batch: Table) -> tuple[np.ndarray, ...]:
        self.calls += 1
        return self.function(batch)  # type: ignore[operator]


def supported_pipeline_expr(expr: Expr) -> bool:
    """Alias of :func:`jit_supported` (pipeline stages share the same
    expression support set)."""
    return jit_supported(expr)


def _emit_pipeline_source(spec: PipelineSpec, emitter: _Emitter) -> str:
    """Straight-line source for the whole pipeline.

    Binds each needed input column exactly once, folds every filter
    segment into one mask + one boolean-index pass over the columns
    still live, and computes projections on the masked selection — no
    intermediate ``Table`` is ever built.
    """
    lines = ["def _kernel(batch):"]
    # the live column space: name -> local variable
    space: dict[str, str] = {}
    needed = _referenced_columns(spec)
    for index, name in enumerate(spec.input_columns):
        if name in needed:
            var = f"_c{index}"
            lines.append(f"    {var} = batch.column({name!r})")
            space[name] = var
    # row count for projections that reference no column (pure literals)
    needs_n = any(
        kind == "project" and any(not expr.columns() for expr, _ in items)
        for kind, items in spec.ops)
    if needs_n:
        lines.append("    _n = batch.num_rows")
    tmp = itertools.count()
    for kind, items in spec.ops:
        if kind == "filter":
            mask_var = f"_m{next(tmp)}"
            conjuncts = " & ".join(
                f"_asbool({emitter.emit(pred, space)})" for pred in items)
            lines.append(f"    {mask_var} = {conjuncts}")
            # one boolean-index pass over every live column
            for name, var in list(space.items()):
                new = f"_f{next(tmp)}"
                lines.append(f"    {new} = {var}[{mask_var}]")
                space[name] = new
            if needs_n:
                lines.append(f"    _n = int({mask_var}.sum())")
        else:  # project
            new_space: dict[str, str] = {}
            for expr, alias in items:
                var = f"_p{next(tmp)}"
                if isinstance(expr, Literal):
                    const = emitter.bind_constant(expr.value)
                    lines.append(f"    {var} = _fill(_n, {const})")
                elif isinstance(expr, ColumnRef):
                    # passthrough: reuse the bound array, zero copies
                    var = space[expr.name]
                else:
                    lines.append(
                        f"    {var} = {emitter.emit(expr, space)}")
                new_space[alias] = var
            space = new_space
    outputs = []
    for name, is_string in spec.output:
        var = space[name]
        outputs.append(f"_asobj({var})" if is_string else var)
    lines.append("    return (" + ", ".join(outputs) + ("," if
                 len(outputs) == 1 else "") + ")")
    return "\n".join(lines) + "\n"


def _referenced_columns(spec: PipelineSpec) -> set[str]:
    """Input columns the generated kernel must bind: everything any
    segment references, plus — until the first projection rebinds the
    space — every output column that passes through untouched."""
    needed: set[str] = set()
    has_project = any(kind == "project" for kind, _ in spec.ops)
    for kind, items in spec.ops:
        if kind == "filter":
            for pred in items:
                needed |= pred.columns()
        else:
            for expr, _ in items:
                needed |= expr.columns()
            break  # later segments reference projected names
    if not has_project:
        needed |= {name for name, _ in spec.output}
    return {name for name in needed if name in set(spec.input_columns)}


def compile_pipeline(spec: PipelineSpec,
                     backend: str = "auto") -> PipelineKernel:
    """Compile a :class:`PipelineSpec` into one fused batch kernel.

    Results are bit-identical across backends and to the interpreted
    operator chain: masks are applied in stage order, projections are
    evaluated on already-masked arrays, and string outputs get the same
    object-dtype coercion ``ProjectOp`` applies.
    """
    if backend not in BACKENDS:
        raise ExpressionError(
            f"unknown JIT backend {backend!r}; expected one of {BACKENDS}")
    for kind, items in spec.ops:
        exprs = (items if kind == "filter"
                 else tuple(expr for expr, _ in items))
        for expr in exprs:
            _check_supported(expr)
    started = time.perf_counter()
    emitter = _Emitter()
    source = _emit_pipeline_source(spec, emitter)
    namespace = _exec_source(source)
    namespace.update(emitter.constants)
    function = namespace["_kernel"]
    function.__globals__.update(emitter.constants)
    resolved = "python"
    if backend in ("auto", "numba") and NUMBA_AVAILABLE:
        accelerated = _try_numba(source, emitter.constants, spec,
                                 function)
        if accelerated is not None:
            function = accelerated
            resolved = "numba"
        # an explicit backend="numba" request that cannot be honoured
        # stays correct on the python path rather than failing the query
    elapsed = time.perf_counter() - started
    return PipelineKernel(
        source=source, function=function, compile_seconds=elapsed,
        backend=resolved,
        output_names=tuple(name for name, _ in spec.output))


def _try_numba(source: str, constants: dict, spec: PipelineSpec,
               python_function):
    """Wrap the generated numeric section in ``numba.njit``.

    Only attempted for pipelines with no string/object data (numba has
    no object-array support): no ``_in_list``/``_fill``-of-string, no
    string outputs.  The njit wrapper takes the bound arrays
    positionally; the outer function still does the ``batch.column``
    binding in Python.  Any failure — at wrap time, or at first call
    when numba's lazy type inference rejects an input — falls back to
    the already-compiled python kernel, so a query can never fail on
    backend grounds.  IEEE float semantics are preserved (no fastmath),
    keeping results bit-identical with the python backend.
    """
    if any(is_string for _, is_string in spec.output):
        return None
    if "_in_list(" in source or "_fill(" in source or "_asobj(" in source:
        return None
    if any(isinstance(value, (str, frozenset))
           for value in constants.values()):
        return None
    try:  # pragma: no cover - exercised only where numba is installed
        lines = source.splitlines()
        binds = [line for line in lines if "batch.column(" in line]
        body = [line for line in lines[1:] if "batch.column(" not in line]
        args = [line.split("=")[0].strip() for line in binds]
        const_names = sorted(constants)
        inner_lines = ([f"def _inner({', '.join(args + const_names)}):"]
                       + [line.replace("_asbool(", "(")
                          for line in body])
        inner_source = "\n".join(inner_lines) + "\n"
        inner_ns = {"_np": np}
        exec(compile(inner_source, "<repro-jit-numba>", "exec"),  # noqa: S102
             inner_ns)
        jitted = numba.njit(cache=False)(inner_ns["_inner"])
        const_values = tuple(constants[name] for name in const_names)
        bound = tuple(
            line.split("batch.column(")[1].rsplit(")", 1)[0].strip("'\"")
            for line in binds)

        def _wrapper(batch):
            arrays = [batch.column(name) for name in bound]
            try:
                return jitted(*arrays, *const_values)
            except Exception:
                # lazy njit compilation rejected these dtypes: results
                # must still be produced, bit-identically
                return python_function(batch)

        return _wrapper
    except Exception:
        return None
