"""Just-in-time kernel specialization (paper §VI).

"Just-in-time code generation using frameworks such as LLVM enables
specializing the code paths" — the Python analogue: compile an expression
tree into a flat Python function (via source generation + ``compile``),
removing the per-batch interpretive walk over the tree.  The compile cost
is real and measured, so benchmarks can show the classic JIT trade-off:
a fixed compilation overhead bought back on every subsequent batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ExpressionError
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InList,
    Literal,
    Not,
    Or,
)
from repro.storage.table import Table

_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass
class SpecializedKernel:
    """A compiled predicate/projection kernel."""

    source: str
    function: object
    compile_seconds: float

    def __call__(self, batch: Table) -> np.ndarray:
        return self.function(batch)  # type: ignore[operator]


def compile_predicate(expr: Expr) -> SpecializedKernel:
    """Compile ``expr`` into a specialized batch kernel.

    The generated source binds column arrays to locals once, then runs one
    straight-line NumPy expression — the code-shape a query compiler emits.
    """
    started = time.perf_counter()
    columns = sorted(expr.columns())
    bindings = "\n    ".join(
        f"_c{i} = batch.column({name!r})" for i, name in enumerate(columns)
    )
    column_vars = {name: f"_c{i}" for i, name in enumerate(columns)}
    body = _emit(expr, column_vars)
    source = (
        "def _kernel(batch):\n"
        f"    {bindings if bindings else 'pass'}\n"
        f"    return _asarray({body})\n"
    )
    namespace: dict = {
        "_np": np,
        "_asarray": lambda x: np.asarray(x, dtype=bool)
        if getattr(x, "dtype", None) != np.dtype(bool) else x,
        "_in_list": _in_list,
    }
    code = compile(source, filename="<repro-jit>", mode="exec")
    exec(code, namespace)  # noqa: S102 - deliberate codegen
    elapsed = time.perf_counter() - started
    return SpecializedKernel(source=source, function=namespace["_kernel"],
                             compile_seconds=elapsed)


def _in_list(values, allowed: frozenset) -> np.ndarray:
    return np.asarray([value in allowed for value in values], dtype=bool)


def _emit(expr: Expr, column_vars: dict[str, str]) -> str:
    if isinstance(expr, ColumnRef):
        return column_vars[expr.name]
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Compare):
        return (f"({_emit(expr.left, column_vars)} {_OPS[expr.op]} "
                f"{_emit(expr.right, column_vars)})")
    if isinstance(expr, And):
        return (f"({_emit(expr.left, column_vars)} & "
                f"{_emit(expr.right, column_vars)})")
    if isinstance(expr, Or):
        return (f"({_emit(expr.left, column_vars)} | "
                f"{_emit(expr.right, column_vars)})")
    if isinstance(expr, Not):
        return f"(~{_emit(expr.operand, column_vars)})"
    if isinstance(expr, Arith):
        return (f"({_emit(expr.left, column_vars)} {expr.op} "
                f"{_emit(expr.right, column_vars)})")
    if isinstance(expr, InList):
        return (f"_in_list({_emit(expr.operand, column_vars)}, "
                f"frozenset({expr.values!r}))")
    if isinstance(expr, Func):
        raise ExpressionError(
            f"JIT specialization does not support function {expr.name!r}"
        )
    raise ExpressionError(f"cannot specialize {type(expr).__name__}")
