"""Deterministic execution simulator for placed plans.

Evaluates a :class:`~repro.hardware.placement.Placement` with *device
contention*: operators become ready when their inputs (plus transfers)
arrive, and each device executes one operator at a time in ready order.
Produces per-operator timelines, per-device busy time, and bytes moved per
link — the quantities the Figure-5 benchmark reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.hardware.placement import Placement, estimate_row_bytes
from repro.hardware.topology import HardwareTopology
from repro.optimizer.cost import CostModel
from repro.optimizer.properties import traits_of
from repro.relational.logical import LogicalPlan


@dataclass
class OperatorTimeline:
    node_label: str
    device: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimulationResult:
    makespan: float
    timelines: list[OperatorTimeline] = field(default_factory=list)
    device_busy: dict[str, float] = field(default_factory=dict)
    bytes_transferred: float = 0.0
    startup_seconds: float = 0.0

    def utilization(self) -> dict[str, float]:
        """Busy fraction per device over the makespan."""
        if self.makespan <= 0:
            return {device: 0.0 for device in self.device_busy}
        return {device: busy / self.makespan
                for device, busy in self.device_busy.items()}


class ExecutionSimulator:
    """List-scheduling simulation of a placed plan."""

    def __init__(self, topology: HardwareTopology, cost_model: CostModel):
        self.topology = topology
        self.cost_model = cost_model

    def simulate(self, plan: LogicalPlan,
                 placement: Placement) -> SimulationResult:
        result = SimulationResult(makespan=0.0)
        device_free: dict[str, float] = {
            name: 0.0 for name in self.topology.devices
        }
        # Startup: each used device pays its startup before first use.
        for device_name in placement.devices_used():
            device = self.topology.device(device_name)
            device_free[device_name] = device.startup_seconds
            result.startup_seconds += device.startup_seconds

        # Model-state shipping: once per (accelerator, query).
        shipped: set[str] = set()
        finish_time: dict[int, float] = {}

        # Ready queue ordered by (#unfinished children == 0, depth order).
        pending = list(plan.walk())
        order = {id(node): position
                 for position, node in enumerate(reversed(pending))}
        heap: list[tuple[int, int]] = []
        remaining_children = {id(node): len(node.children)
                              for node in pending}
        node_by_id = {id(node): node for node in pending}
        for node in pending:
            if not node.children:
                heapq.heappush(heap, (order[id(node)], id(node)))

        parents: dict[int, int] = {}
        for node in pending:
            for child in node.children:
                parents[id(child)] = id(node)

        while heap:
            _, node_id = heapq.heappop(heap)
            node = node_by_id[node_id]
            device_name = placement.assignment[node_id]
            device = self.topology.device(device_name)

            ready = device_free[device_name]
            for child in node.children:
                child_device = placement.assignment[id(child)]
                child_bytes = (self.cost_model.estimator.estimate(child)
                               * estimate_row_bytes(child.schema))
                move = self.topology.transfer_seconds(child_device,
                                                      device_name,
                                                      child_bytes)
                if child_device != device_name:
                    result.bytes_transferred += child_bytes
                ready = max(ready, finish_time[id(child)] + move)

            traits = traits_of(node)
            extra = 0.0
            if (traits.compute_class == "model"
                    and device_name != self.topology.host
                    and device_name not in shipped):
                extra = self.topology.transfer_seconds(
                    self.topology.host, device_name,
                    traits.model_state_bytes)
                shipped.add(device_name)
                result.bytes_transferred += traits.model_state_bytes

            cost = self.cost_model.node_cost(node)
            duration = device.execution_seconds(cost.cpu, cost.model) + extra
            start = ready
            finish = start + duration
            device_free[device_name] = finish
            finish_time[node_id] = finish
            result.timelines.append(OperatorTimeline(node.label(),
                                                     device_name, start,
                                                     finish))
            result.device_busy[device_name] = (
                result.device_busy.get(device_name, 0.0) + duration)

            parent_id = parents.get(node_id)
            if parent_id is not None:
                remaining_children[parent_id] -= 1
                if remaining_children[parent_id] == 0:
                    heapq.heappush(heap, (order[parent_id], parent_id))

        root_finish = finish_time[id(plan)]
        root_device = placement.assignment[id(plan)]
        deliver = self.topology.transfer_seconds(
            root_device, self.topology.host,
            self.cost_model.estimator.estimate(plan)
            * estimate_row_bytes(plan.schema))
        result.makespan = root_finish + deliver
        return result
