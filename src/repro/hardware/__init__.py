"""Hardware-conscious optimization over simulated heterogeneous hardware.

Paper §VI: CPUs, GPUs, TPU-like inference accelerators, NPUs, NVMe storage
and InfiniBand interconnects (Figure 5) — the engine must "provision these
resources correctly ... place, split, and schedule the execution".

Real accelerators are not available in this environment, so the devices
are *analytical models* (documented substitution, DESIGN.md §2): each
device has throughputs per compute class, a startup cost, and model-state
shipping costs; links have bandwidth and latency.  What is real is the
*decision procedure*: a cost-based placement optimizer (tree DP over
device assignments) and a deterministic execution simulator that evaluates
any placement — which is exactly what the paper's §VI asks the optimizer
to do.
"""

from repro.hardware.devices import (
    Device,
    DeviceKind,
    Link,
    a100_gpu,
    infiniband,
    mobile_npu,
    nvlink,
    nvme,
    pcie3,
    pcie4,
    tpu_v4,
    xeon_cpu,
)
from repro.hardware.topology import HardwareTopology, standard_topologies
from repro.hardware.placement import Placement, PlacementOptimizer
from repro.hardware.simulator import ExecutionSimulator, SimulationResult
from repro.hardware.jit import compile_predicate, SpecializedKernel

__all__ = [
    "Device",
    "DeviceKind",
    "Link",
    "a100_gpu",
    "infiniband",
    "mobile_npu",
    "nvlink",
    "nvme",
    "pcie3",
    "pcie4",
    "tpu_v4",
    "xeon_cpu",
    "HardwareTopology",
    "standard_topologies",
    "Placement",
    "PlacementOptimizer",
    "ExecutionSimulator",
    "SimulationResult",
    "compile_predicate",
    "SpecializedKernel",
]
