"""Hardware topology: devices connected by links (Figure 5 layouts)."""

from __future__ import annotations

import networkx as nx

from repro.errors import HardwareError
from repro.hardware.devices import (
    Device,
    DeviceKind,
    Link,
    a100_gpu,
    infiniband,
    nvlink,
    pcie3,
    pcie4,
    tpu_v4,
    xeon_cpu,
)


class HardwareTopology:
    """A set of devices and interconnects with path-based transfer costs."""

    def __init__(self, devices: list[Device], links: list[Link],
                 host: str | None = None):
        self.devices = {device.name: device for device in devices}
        if len(self.devices) != len(devices):
            raise HardwareError("duplicate device names")
        self.links: dict[frozenset, Link] = {}
        self._graph = nx.Graph()
        for device in devices:
            self._graph.add_node(device.name)
        for link in links:
            if link.a not in self.devices or link.b not in self.devices:
                raise HardwareError(
                    f"link {link.a}<->{link.b} references unknown device"
                )
            self.links[link.endpoints()] = link
            self._graph.add_edge(link.a, link.b,
                                 seconds_per_byte=1.0 /
                                 link.bandwidth_bytes_per_s)
        self.host = host or devices[0].name
        if self.host not in self.devices:
            raise HardwareError(f"unknown host {self.host!r}")
        if not nx.is_connected(self._graph):
            raise HardwareError("topology is not connected")

    @property
    def compute_devices(self) -> list[Device]:
        return [d for d in self.devices.values()
                if d.kind != DeviceKind.STORAGE]

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise HardwareError(f"unknown device {name!r}") from None

    def transfer_seconds(self, source: str, destination: str,
                         n_bytes: float) -> float:
        """Time to move ``n_bytes`` along the cheapest path."""
        if source == destination:
            return 0.0
        try:
            path = nx.shortest_path(self._graph, source, destination,
                                    weight="seconds_per_byte")
        except nx.NetworkXNoPath:
            return float("inf")
        total = 0.0
        for hop_a, hop_b in zip(path, path[1:]):
            link = self.links[frozenset((hop_a, hop_b))]
            total += link.transfer_seconds(n_bytes)
        return total

    def __repr__(self) -> str:
        return (f"HardwareTopology(devices={sorted(self.devices)}, "
                f"links={len(self.links)}, host={self.host!r})")


def standard_topologies() -> dict[str, HardwareTopology]:
    """The three Figure-5 layouts the placement benchmark sweeps."""
    cpu_only = HardwareTopology([xeon_cpu("cpu0")], [], host="cpu0")

    cpu = xeon_cpu("cpu0")
    gpu = a100_gpu("gpu0")
    cpu_gpu = HardwareTopology([cpu, gpu], [pcie4("cpu0", "gpu0")],
                               host="cpu0")

    cpu2 = xeon_cpu("cpu1")
    gpu0 = a100_gpu("gpu0")
    gpu1 = a100_gpu("gpu1")
    tpu = tpu_v4("tpu0")
    full = HardwareTopology(
        [xeon_cpu("cpu0"), cpu2, gpu0, gpu1, tpu],
        [
            infiniband("cpu0", "cpu1"),
            pcie4("cpu0", "gpu0"),
            pcie4("cpu1", "gpu1"),
            nvlink("gpu0", "gpu1"),
            pcie3("cpu0", "tpu0"),
        ],
        host="cpu0",
    )
    return {"cpu-only": cpu_only, "cpu+gpu": cpu_gpu,
            "cpu+2gpu+tpu": full}
