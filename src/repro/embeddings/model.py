"""The embedding model: word vectors + hashed subword vectors (fastText-like).

A model is immutable once built.  It exposes a tiny, engine-facing API:
``embed`` / ``embed_batch`` map strings into the latent space, and
``most_similar`` answers vocabulary-restricted nearest-neighbour queries
(used to regenerate the paper's Table I).

The model also counts how many tokens it embedded (``tokens_embedded``),
which the optimizer's cost model and the Figure-4 prefetch experiment use
to attribute model-inference work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.embeddings.subword import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_N,
    DEFAULT_MIN_N,
    fnv1a,
    subword_ids,
    subword_ids_batch,
)
from repro.utils.parallel import PARALLEL_MIN_ITEMS, map_chunks
from repro.utils.rng import make_rng
from repro.utils.text import normalize_token

#: Batches smaller than this keep the subword kernel serial (pool setup
#: would cost more than the hashing it spreads).  Aliased from the
#: shared threshold as a module attribute so tests can lower it.
PARALLEL_MIN_TOKENS = PARALLEL_MIN_ITEMS


def fit_bucket_vectors(
    vocab: dict[str, int],
    word_vectors: np.ndarray,
    buckets: int,
    min_n: int = DEFAULT_MIN_N,
    max_n: int = DEFAULT_MAX_N,
) -> np.ndarray:
    """Derive subword bucket vectors from finished word vectors.

    Each bucket receives the mean of the vectors of every vocabulary word
    containing an n-gram hashing into it.  A word's mean-of-grams then
    reconstructs (approximately) its own vector, and an out-of-vocabulary
    misspelling — sharing most n-grams with the intended word — lands close
    to it.  This mirrors how fastText's trained subword vectors behave
    without requiring subword-level training.
    """
    dim = word_vectors.shape[1]
    sums = np.zeros((buckets, dim), dtype=np.float64)
    counts = np.zeros(buckets, dtype=np.int64)
    for word, index in vocab.items():
        ids = subword_ids(word, buckets, min_n, max_n)
        if ids.size == 0:
            continue
        np.add.at(sums, ids, word_vectors[index])
        np.add.at(counts, ids, 1)
    nonzero = counts > 0
    sums[nonzero] /= counts[nonzero, None]
    return sums.astype(np.float32)


@dataclass
class EmbeddingModel:
    """fastText-style embedding model.

    Parameters
    ----------
    name:
        Registry name (referenced by queries as ``USING MODEL name``).
    vocab:
        word -> row index into ``word_vectors``.  Multi-word phrases are
        legal vocabulary entries (``"golden retriever"``).
    word_vectors:
        ``(V, dim)`` float32 matrix.
    bucket_vectors:
        ``(buckets, dim)`` float32 matrix of hashed subword vectors.
    subword_weight:
        Mixing weight of the subword mean for *in-vocabulary* words
        (out-of-vocabulary words always use subwords alone).
    parallelism:
        Default worker count for the batch subword/segment-sum kernels
        when ``embed_batch`` is called without ``workers`` (1 = serial).
        Sessions pass their setting per call instead of mutating this.
        Results are identical at any worker count — chunks are
        owner-aligned, so per-word segment sums reduce over exactly the
        same rows.
    """

    name: str
    vocab: dict[str, int]
    word_vectors: np.ndarray
    bucket_vectors: np.ndarray
    min_n: int = DEFAULT_MIN_N
    max_n: int = DEFAULT_MAX_N
    subword_weight: float = 0.3
    parallelism: int = field(default=1, repr=False)
    tokens_embedded: int = field(default=0, repr=False)
    _vocab_matrix: np.ndarray | None = field(default=None, repr=False)
    _vocab_words: list[str] | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.word_vectors.ndim != 2:
            raise ModelError("word_vectors must be a (V, dim) matrix")
        if len(self.vocab) != self.word_vectors.shape[0]:
            raise ModelError(
                f"vocab size {len(self.vocab)} != word_vectors rows "
                f"{self.word_vectors.shape[0]}"
            )
        if self.bucket_vectors.shape[1] != self.dim:
            raise ModelError("bucket_vectors dim mismatch")

    @property
    def dim(self) -> int:
        """Dimensionality of the latent space."""
        return int(self.word_vectors.shape[1])

    @property
    def buckets(self) -> int:
        return int(self.bucket_vectors.shape[0])

    def __contains__(self, word: str) -> bool:
        return normalize_token(word) in self.vocab

    def __len__(self) -> int:
        return len(self.vocab)

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def embed(self, text: str) -> np.ndarray:
        """Embed one string into a unit vector of shape ``(dim,)``."""
        self.tokens_embedded += 1
        vector = self._raw_vector(normalize_token(text))
        return _unit(vector)

    def embed_batch(self, texts, workers: int | None = None) -> np.ndarray:
        """Embed a sequence of strings into a ``(n, dim)`` float32 matrix.

        This is the vectorized hot path: tokens are normalized and
        deduplicated once, partitioned into in-vocabulary / multi-word /
        out-of-vocabulary groups, and each group is embedded with a
        handful of NumPy kernel calls (one fancy-index gather for vocab
        rows, one flattened segment-sum for all subword means, one
        normalization pass over the whole batch).  Per-string ``embed``
        calls remain the documented slow path the paper's Figure-4
        baseline rungs measure.

        ``workers`` sets the subword-kernel thread count for this call;
        ``None`` uses the model's ``parallelism`` default.  Sessions
        thread their setting through per call (via the session-owned
        embedding cache) rather than mutating shared model state.
        """
        tokens = [normalize_token(text) for text in texts]
        first_seen: dict[str, int] = {}
        inverse = np.empty(len(tokens), dtype=np.int64)
        unique: list[str] = []
        for position, token in enumerate(tokens):
            uid = first_seen.get(token)
            if uid is None:
                uid = len(unique)
                first_seen[token] = uid
                unique.append(token)
            inverse[position] = uid
        if workers is None:
            workers = self.parallelism
        rows = _unit_rows(self._raw_vectors_batch(unique, workers))
        self.tokens_embedded += len(unique)
        if len(unique) == len(tokens):
            return rows
        return rows[inverse]

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two strings in latent space."""
        return float(np.dot(self.embed(text_a), self.embed(text_b)))

    # ------------------------------------------------------------------
    # Vocabulary-restricted nearest neighbours (Table I)
    # ------------------------------------------------------------------
    def most_similar(
        self,
        query: str,
        k: int = 10,
        candidates: list[str] | None = None,
        exclude_self: bool = True,
    ) -> list[tuple[str, float]]:
        """Top-``k`` most cosine-similar words.

        Searches the model vocabulary, or ``candidates`` when given.
        ``exclude_self`` drops an exact (normalized) match of the query
        string itself, as is conventional for word-similarity listings.
        """
        query_token = normalize_token(query)
        query_vector = self.embed(query_token)
        if candidates is None:
            words = self._vocabulary_words()
            matrix = self._vocabulary_matrix()
        else:
            words = [normalize_token(c) for c in candidates]
            matrix = self.embed_batch(words)
        scores = matrix @ query_vector
        from repro.vector.topk import top_k_indices

        # argpartition-backed selection: fetch k (+1 for a possible
        # self-match) instead of sorting the whole vocabulary; widen only
        # in the rare case duplicates of the query crowd the cut.
        fetch = k + 1 if exclude_self else k
        results: list[tuple[str, float]] = []
        while True:
            order = top_k_indices(scores, fetch)
            results.clear()
            for index in order:
                word = words[int(index)]
                if exclude_self and word == query_token:
                    continue
                results.append((word, float(scores[int(index)])))
                if len(results) == k:
                    break
            if len(results) >= k or order.shape[0] >= scores.shape[0]:
                return results
            fetch = min(scores.shape[0], fetch * 2)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _raw_vector(self, token: str) -> np.ndarray:
        index = self.vocab.get(token)
        if index is not None:
            vector = self.word_vectors[index].astype(np.float32)
            if self.subword_weight > 0.0:
                ids = subword_ids(token, self.buckets, self.min_n, self.max_n)
                if ids.size:
                    subword_mean = self.bucket_vectors[ids].mean(axis=0)
                    vector = ((1.0 - self.subword_weight) * vector
                              + self.subword_weight * subword_mean)
            return vector
        parts = token.split()
        if len(parts) > 1:
            return np.mean([self._raw_vector(part) for part in parts], axis=0)
        ids = subword_ids(token, self.buckets, self.min_n, self.max_n)
        if ids.size:
            vector = self.bucket_vectors[ids].mean(axis=0)
            if float(np.abs(vector).max(initial=0.0)) > 0.0:
                return vector
        return self._fallback_vector(token)

    def _raw_vectors_batch(self, tokens: list[str],
                           workers: int = 1) -> np.ndarray:
        """Raw (pre-normalization) vectors for distinct tokens, batched.

        Semantically equivalent to ``[self._raw_vector(t) for t in
        tokens]`` but grouped so the whole batch needs O(groups) NumPy
        calls instead of O(tokens) Python round-trips.  Multi-word
        phrases recurse one level onto their (single-word) parts, so
        repeated parts across phrases are embedded once.
        """
        rows = np.zeros((len(tokens), self.dim), dtype=np.float64)
        vocab_pos: list[int] = []
        vocab_idx: list[int] = []
        multi_pos: list[int] = []
        oov_pos: list[int] = []
        for position, token in enumerate(tokens):
            index = self.vocab.get(token)
            if index is not None:
                vocab_pos.append(position)
                vocab_idx.append(index)
            elif " " in token:
                multi_pos.append(position)
            else:
                oov_pos.append(position)

        if vocab_pos:
            gathered = self.word_vectors[np.asarray(vocab_idx)].astype(
                np.float64)
            if self.subword_weight > 0.0:
                means, has_grams = self._subword_means(
                    [tokens[p] for p in vocab_pos], workers)
                weight = self.subword_weight
                gathered[has_grams] = (
                    (1.0 - weight) * gathered[has_grams]
                    + weight * means[has_grams])
            rows[np.asarray(vocab_pos)] = gathered

        if oov_pos:
            means, has_grams = self._subword_means(
                [tokens[p] for p in oov_pos], workers)
            usable = has_grams & (np.abs(means).max(axis=1) > 0.0)
            positions = np.asarray(oov_pos)
            rows[positions[usable]] = means[usable]
            for position in positions[~usable]:
                rows[position] = self._fallback_vector(tokens[position])

        if multi_pos:
            part_of: dict[str, int] = {}
            parts: list[str] = []
            owners: list[int] = []
            refs: list[int] = []
            for owner, position in enumerate(multi_pos):
                for part in tokens[position].split():
                    ref = part_of.get(part)
                    if ref is None:
                        ref = len(parts)
                        part_of[part] = ref
                        parts.append(part)
                    owners.append(owner)
                    refs.append(ref)
            # float32 like the scalar path's np.mean over raw vectors;
            # also halves the gather/segment-sum memory traffic
            part_rows = self._raw_vectors_batch(parts,
                                                workers).astype(np.float32)
            sums, counts = _segment_sums(
                part_rows, np.asarray(refs, dtype=np.int64),
                np.asarray(owners, dtype=np.int64), len(multi_pos))
            rows[np.asarray(multi_pos)] = sums / counts[:, None]
        return rows

    def _subword_means(self, words: list[str],
                       workers: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Mean subword-bucket vector per word, as one segment-sum.

        Returns ``(means, has_grams)`` where ``means`` is ``(n, dim)``
        float64 (zero rows where a word produced no n-grams) and
        ``has_grams`` flags words with at least one gram.

        Large batches fan out over ``workers`` threads in owner-aligned
        chunks: each worker hashes and segment-sums its own word range
        into disjoint output rows, so no synchronization is needed and
        the result is bit-identical to the serial path (``_segment_sums``
        already aligns its reduceat chunks to segment boundaries, so
        per-word sums see exactly the same row order).
        """
        def mean_chunk(start: int, stop: int):
            ids, owners = subword_ids_batch(words[start:stop], self.buckets,
                                            self.min_n, self.max_n)
            return _segment_sums(self.bucket_vectors, ids, owners,
                                 stop - start)

        parts = map_chunks(len(words), workers, mean_chunk,
                           min_items=PARALLEL_MIN_TOKENS)
        if not parts:
            sums = np.zeros((0, self.dim), dtype=np.float64)
            counts = np.zeros(0, dtype=np.int64)
        elif len(parts) == 1:   # serial fast path: no re-copy
            sums, counts = parts[0]
        else:
            sums = np.concatenate([p[0] for p in parts])
            counts = np.concatenate([p[1] for p in parts])
        has_grams = counts > 0
        sums[has_grams] /= counts[has_grams, None]
        return sums, has_grams

    def _fallback_vector(self, token: str) -> np.ndarray:
        """Deterministic pseudo-random unit vector for fully unknown input."""
        rng = make_rng(fnv1a(token) % (2**63 - 1))
        vector = rng.standard_normal(self.dim).astype(np.float32)
        return vector

    def _vocabulary_words(self) -> list[str]:
        if self._vocab_words is None:
            self._vocab_words = [None] * len(self.vocab)  # type: ignore[list-item]
            for word, index in self.vocab.items():
                self._vocab_words[index] = word
        return self._vocab_words

    def _vocabulary_matrix(self) -> np.ndarray:
        if self._vocab_matrix is None:
            words = self._vocabulary_words()
            self._vocab_matrix = self.embed_batch(words)
        return self._vocab_matrix


def _segment_sums(source: np.ndarray, indices: np.ndarray,
                  owners: np.ndarray, n_segments: int,
                  chunk: int = 1 << 16) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment sums of ``source[indices]`` grouped by sorted ``owners``.

    ``owners`` must be nondecreasing (as :func:`subword_ids_batch`
    guarantees), which allows ``np.add.reduceat`` over contiguous
    segments — orders of magnitude faster than the unbuffered
    ``np.ufunc.at``.  Gathers are chunked (``chunk`` rows at a time,
    aligned to segment boundaries) so the float64 working set stays
    bounded for very large batches.

    Returns ``(sums, counts)``: ``(n_segments, dim)`` float64 sums (zero
    rows for absent segments) and the per-segment element counts.
    """
    sums = np.zeros((n_segments, source.shape[1]), dtype=np.float64)
    counts = np.bincount(owners, minlength=n_segments)
    if indices.size == 0:
        return sums, counts
    present = np.nonzero(counts)[0]
    bounds = np.concatenate(
        ([0], np.cumsum(counts[present], dtype=np.int64)))
    segment = 0
    while segment < present.size:
        stop = int(np.searchsorted(bounds, bounds[segment] + chunk,
                                   side="left"))
        stop = min(max(stop, segment + 1), present.size)
        low, high = int(bounds[segment]), int(bounds[stop])
        block = source[indices[low:high]]
        starts = (bounds[segment:stop] - low).astype(np.intp)
        # native-dtype accumulation (float32 for bucket vectors) keeps
        # reduceat memory-bound; the scalar path's np.mean accumulates in
        # float32 too, so this matches its precision envelope.
        sums[present[segment:stop]] = np.add.reduceat(block, starts, axis=0)
        segment = stop
    return sums, counts


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        result = np.zeros_like(vector, dtype=np.float32)
        result[0] = 1.0
        return result
    return (vector / norm).astype(np.float32)


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalize a matrix in one pass (batch analogue of ``_unit``).

    Zero rows map to the first basis vector, matching ``_unit``.
    """
    norms = np.linalg.norm(matrix, axis=1)
    zero = norms == 0.0
    if zero.any():
        matrix = matrix.copy()
        matrix[zero] = 0.0
        matrix[zero, 0] = 1.0
        norms = np.where(zero, 1.0, norms)
    return (matrix / norms[:, None]).astype(np.float32)
