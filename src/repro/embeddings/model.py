"""The embedding model: word vectors + hashed subword vectors (fastText-like).

A model is immutable once built.  It exposes a tiny, engine-facing API:
``embed`` / ``embed_batch`` map strings into the latent space, and
``most_similar`` answers vocabulary-restricted nearest-neighbour queries
(used to regenerate the paper's Table I).

The model also counts how many tokens it embedded (``tokens_embedded``),
which the optimizer's cost model and the Figure-4 prefetch experiment use
to attribute model-inference work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.embeddings.subword import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_N,
    DEFAULT_MIN_N,
    fnv1a,
    subword_ids,
)
from repro.utils.rng import make_rng
from repro.utils.text import normalize_token


def fit_bucket_vectors(
    vocab: dict[str, int],
    word_vectors: np.ndarray,
    buckets: int,
    min_n: int = DEFAULT_MIN_N,
    max_n: int = DEFAULT_MAX_N,
) -> np.ndarray:
    """Derive subword bucket vectors from finished word vectors.

    Each bucket receives the mean of the vectors of every vocabulary word
    containing an n-gram hashing into it.  A word's mean-of-grams then
    reconstructs (approximately) its own vector, and an out-of-vocabulary
    misspelling — sharing most n-grams with the intended word — lands close
    to it.  This mirrors how fastText's trained subword vectors behave
    without requiring subword-level training.
    """
    dim = word_vectors.shape[1]
    sums = np.zeros((buckets, dim), dtype=np.float64)
    counts = np.zeros(buckets, dtype=np.int64)
    for word, index in vocab.items():
        ids = subword_ids(word, buckets, min_n, max_n)
        if ids.size == 0:
            continue
        np.add.at(sums, ids, word_vectors[index])
        np.add.at(counts, ids, 1)
    nonzero = counts > 0
    sums[nonzero] /= counts[nonzero, None]
    return sums.astype(np.float32)


@dataclass
class EmbeddingModel:
    """fastText-style embedding model.

    Parameters
    ----------
    name:
        Registry name (referenced by queries as ``USING MODEL name``).
    vocab:
        word -> row index into ``word_vectors``.  Multi-word phrases are
        legal vocabulary entries (``"golden retriever"``).
    word_vectors:
        ``(V, dim)`` float32 matrix.
    bucket_vectors:
        ``(buckets, dim)`` float32 matrix of hashed subword vectors.
    subword_weight:
        Mixing weight of the subword mean for *in-vocabulary* words
        (out-of-vocabulary words always use subwords alone).
    """

    name: str
    vocab: dict[str, int]
    word_vectors: np.ndarray
    bucket_vectors: np.ndarray
    min_n: int = DEFAULT_MIN_N
    max_n: int = DEFAULT_MAX_N
    subword_weight: float = 0.3
    tokens_embedded: int = field(default=0, repr=False)
    _vocab_matrix: np.ndarray | None = field(default=None, repr=False)
    _vocab_words: list[str] | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.word_vectors.ndim != 2:
            raise ModelError("word_vectors must be a (V, dim) matrix")
        if len(self.vocab) != self.word_vectors.shape[0]:
            raise ModelError(
                f"vocab size {len(self.vocab)} != word_vectors rows "
                f"{self.word_vectors.shape[0]}"
            )
        if self.bucket_vectors.shape[1] != self.dim:
            raise ModelError("bucket_vectors dim mismatch")

    @property
    def dim(self) -> int:
        """Dimensionality of the latent space."""
        return int(self.word_vectors.shape[1])

    @property
    def buckets(self) -> int:
        return int(self.bucket_vectors.shape[0])

    def __contains__(self, word: str) -> bool:
        return normalize_token(word) in self.vocab

    def __len__(self) -> int:
        return len(self.vocab)

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def embed(self, text: str) -> np.ndarray:
        """Embed one string into a unit vector of shape ``(dim,)``."""
        self.tokens_embedded += 1
        vector = self._raw_vector(normalize_token(text))
        return _unit(vector)

    def embed_batch(self, texts) -> np.ndarray:
        """Embed a sequence of strings into a ``(n, dim)`` float32 matrix.

        Duplicate strings are embedded once (the batch API is the model's
        "prefetch-friendly" entry point; per-pair ``embed`` calls are the
        slow path the paper's Figure 4 starts from).
        """
        unique: dict[str, np.ndarray] = {}
        rows = np.empty((len(texts), self.dim), dtype=np.float32)
        for position, text in enumerate(texts):
            token = normalize_token(text)
            vector = unique.get(token)
            if vector is None:
                vector = _unit(self._raw_vector(token))
                unique[token] = vector
            rows[position] = vector
        self.tokens_embedded += len(unique)
        return rows

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two strings in latent space."""
        return float(np.dot(self.embed(text_a), self.embed(text_b)))

    # ------------------------------------------------------------------
    # Vocabulary-restricted nearest neighbours (Table I)
    # ------------------------------------------------------------------
    def most_similar(
        self,
        query: str,
        k: int = 10,
        candidates: list[str] | None = None,
        exclude_self: bool = True,
    ) -> list[tuple[str, float]]:
        """Top-``k`` most cosine-similar words.

        Searches the model vocabulary, or ``candidates`` when given.
        ``exclude_self`` drops an exact (normalized) match of the query
        string itself, as is conventional for word-similarity listings.
        """
        query_token = normalize_token(query)
        query_vector = self.embed(query_token)
        if candidates is None:
            words = self._vocabulary_words()
            matrix = self._vocabulary_matrix()
        else:
            words = [normalize_token(c) for c in candidates]
            matrix = self.embed_batch(words)
        scores = matrix @ query_vector
        order = np.argsort(-scores)
        results: list[tuple[str, float]] = []
        for index in order:
            word = words[int(index)]
            if exclude_self and word == query_token:
                continue
            results.append((word, float(scores[int(index)])))
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _raw_vector(self, token: str) -> np.ndarray:
        index = self.vocab.get(token)
        if index is not None:
            vector = self.word_vectors[index].astype(np.float32)
            if self.subword_weight > 0.0:
                ids = subword_ids(token, self.buckets, self.min_n, self.max_n)
                if ids.size:
                    subword_mean = self.bucket_vectors[ids].mean(axis=0)
                    vector = ((1.0 - self.subword_weight) * vector
                              + self.subword_weight * subword_mean)
            return vector
        parts = token.split()
        if len(parts) > 1:
            return np.mean([self._raw_vector(part) for part in parts], axis=0)
        ids = subword_ids(token, self.buckets, self.min_n, self.max_n)
        if ids.size:
            vector = self.bucket_vectors[ids].mean(axis=0)
            if float(np.abs(vector).max(initial=0.0)) > 0.0:
                return vector
        return self._fallback_vector(token)

    def _fallback_vector(self, token: str) -> np.ndarray:
        """Deterministic pseudo-random unit vector for fully unknown input."""
        rng = make_rng(fnv1a(token) % (2**63 - 1))
        vector = rng.standard_normal(self.dim).astype(np.float32)
        return vector

    def _vocabulary_words(self) -> list[str]:
        if self._vocab_words is None:
            self._vocab_words = [None] * len(self.vocab)  # type: ignore[list-item]
            for word, index in self.vocab.items():
                self._vocab_words[index] = word
        return self._vocab_words

    def _vocabulary_matrix(self) -> np.ndarray:
        if self._vocab_matrix is None:
            words = self._vocabulary_words()
            self._vocab_matrix = self.embed_batch(words)
        return self._vocab_matrix


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        result = np.zeros_like(vector, dtype=np.float32)
        result[0] = 1.0
        return result
    return (vector / norm).astype(np.float32)
