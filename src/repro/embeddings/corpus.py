"""Synthetic text corpus generator for training representation models.

Sentences place a concept's surface form inside a *topic context* shared by
all forms of that concept, mixed with Zipf-distributed filler words.  A
skip-gram model trained on such a corpus clusters synonyms — the
distributional-hypothesis mechanism the paper's representation models rely
on — which lets the test suite exercise the genuine training path end to
end.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.pretrained import FILLER_WORDS
from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.utils.rng import derive_seed, make_rng


class CorpusGenerator:
    """Generates token-list sentences around thesaurus concepts."""

    def __init__(
        self,
        thesaurus: Thesaurus | None = None,
        seed: int = 11,
        topic_words_per_concept: int = 6,
        zipf_exponent: float = 1.4,
    ):
        self.thesaurus = thesaurus or default_thesaurus()
        self.seed = seed
        self.topic_words_per_concept = topic_words_per_concept
        self.zipf_exponent = zipf_exponent
        self._topics = self._assign_topics()

    def _assign_topics(self) -> dict[str, list[str]]:
        """Assign each concept a stable set of topic (context) words."""
        topics: dict[str, list[str]] = {}
        fillers = list(FILLER_WORDS)
        for concept in self.thesaurus:
            rng = make_rng(derive_seed(self.seed, "topic", concept.name))
            picks = rng.choice(len(fillers), size=self.topic_words_per_concept,
                               replace=False)
            topics[concept.name] = [fillers[int(i)] for i in picks]
        return topics

    def topic_of(self, concept_name: str) -> list[str]:
        """Topic words assigned to a concept (stable across calls)."""
        return list(self._topics[concept_name])

    def sentence(self, rng: np.random.Generator) -> list[str]:
        """One sentence: filler prefix, topic words, a concept form, filler."""
        concepts = list(self.thesaurus)
        concept = concepts[int(rng.integers(len(concepts)))]
        form = concept.forms[int(rng.integers(len(concept.forms)))]
        topic = self._topics[concept.name]
        tokens: list[str] = []
        tokens.extend(self._fillers(rng, count=int(rng.integers(1, 3))))
        tokens.extend(rng.permutation(topic)[: 3].tolist())
        tokens.extend(form.split())
        tokens.extend(rng.permutation(topic)[: 2].tolist())
        tokens.extend(self._fillers(rng, count=int(rng.integers(1, 3))))
        return tokens

    def generate(self, n_sentences: int, seed: int | None = None) -> list[list[str]]:
        """Generate ``n_sentences`` sentences deterministically."""
        rng = make_rng(derive_seed(self.seed if seed is None else seed, "corpus"))
        return [self.sentence(rng) for _ in range(n_sentences)]

    def _fillers(self, rng: np.random.Generator, count: int) -> list[str]:
        ranks = rng.zipf(self.zipf_exponent, size=count)
        ranks = np.clip(ranks, 1, len(FILLER_WORDS)) - 1
        return [FILLER_WORDS[int(r)] for r in ranks]
