"""Deterministic synthetic "pretrained" embedding model.

Substitutes for *fastText trained on Wikipedia/Common Crawl* (paper §III-V),
which we cannot download.  The substitution is documented in DESIGN.md; the
key property the engine consumes is the *geometry*:

- surface forms of the same concept (synonyms, alternative spellings):
  cosine ~ ``1 / (1 + form_noise^2)``  (~0.94 at the default 0.25),
- a leaf form vs its hypernym's forms: cosine ~ ``parent_affinity`` scaled
  by the same noise factor (~0.75 at the default 0.8),
- forms of sibling concepts: cosine ~ ``parent_affinity^2`` scaled (~0.60),
- unrelated concepts: near-orthogonal (high dimension, random anchors).

So a 0.9 cosine threshold isolates synonyms, ~0.7 reaches hypernyms, and
~0.55 pulls in siblings — a controllable dial for every experiment.
Misspellings work through the fitted subword buckets
(:func:`repro.embeddings.model.fit_bucket_vectors`).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.model import EmbeddingModel, fit_bucket_vectors
from repro.embeddings.subword import DEFAULT_BUCKETS, DEFAULT_MAX_N, DEFAULT_MIN_N
from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.utils.rng import derive_seed, make_rng
from repro.utils.text import normalize_token

#: Small list of frequent "filler" words so the model's vocabulary is not
#: exclusively thesaurus terms (workload strings mix both).
FILLER_WORDS = (
    "the of and to in is was for on that by this with from at as it are "
    "be or an were which have has had not but his her they you we she he "
    "their its one two new first last year day time people way world life "
    "work part place case week company system program question government "
    "number night point home water room mother area money story fact month "
    "lot right study book eye job word business issue side kind head house "
    "service friend father power hour game line end member law car city "
    "community name president team minute idea body information back parent "
    "face others level office door health person art war history party "
    "result change morning reason research girl guy moment air teacher force "
    "education foot boy age policy process music market sense nation plan "
    "college interest death experience effect use class control care field "
    "development role effort rate heart drug show leader light voice wife "
    "whole police mind finally pull return free military price report less "
    "according decision explain son hope even develop view relationship town "
    "road arm true federal break better difference thus instead economy"
).split()


def build_pretrained_model(
    thesaurus: Thesaurus | None = None,
    dim: int = 100,
    seed: int = 7,
    buckets: int = DEFAULT_BUCKETS,
    parent_affinity: float = 0.8,
    form_noise: float = 0.25,
    extra_vocab: list[str] | None = None,
    name: str = "wiki-ft-100",
    subword_weight: float = 0.3,
) -> EmbeddingModel:
    """Build the synthetic pretrained model.

    Parameters mirror the geometry knobs described in the module docstring.
    ``extra_vocab`` adds caller-specific words (random unit vectors); the
    built-in filler list is always included.
    """
    thesaurus = thesaurus or default_thesaurus()
    thesaurus.validate()

    vocab: dict[str, int] = {}
    vectors: list[np.ndarray] = []

    def add_word(word: str, vector: np.ndarray) -> None:
        token = normalize_token(word)
        if token in vocab:
            return
        vocab[token] = len(vectors)
        vectors.append(vector.astype(np.float32))

    # 1. Unit directions per concept, hypernyms first (children mix them in).
    parent_dirs: dict[str, np.ndarray] = {}
    for concept in thesaurus.hypernyms:
        rng = make_rng(derive_seed(seed, "hyper", concept.name))
        parent_dirs[concept.name] = _unit(rng.standard_normal(dim))

    anchors: dict[str, np.ndarray] = {}
    for concept in thesaurus:
        if concept.is_hypernym:
            anchors[concept.name] = parent_dirs[concept.name]
            continue
        rng = make_rng(derive_seed(seed, "leaf", concept.name))
        own_dir = _unit(rng.standard_normal(dim))
        parent = thesaurus.parent_of(concept.name)
        if parent is None:
            anchors[concept.name] = own_dir
        else:
            mix = (parent_affinity * parent_dirs[parent.name]
                   + np.sqrt(1.0 - parent_affinity**2) * own_dir)
            anchors[concept.name] = _unit(mix)

    # 2. Surface-form vectors: anchor + bounded per-form noise.
    for concept in thesaurus:
        anchor = anchors[concept.name]
        for form in concept.forms:
            rng = make_rng(derive_seed(seed, "form", concept.name, form))
            noise = rng.standard_normal(dim)
            noise = noise / np.linalg.norm(noise) * form_noise
            add_word(form, _unit(anchor + noise))

    # 3. Filler and caller-provided vocabulary: independent random units.
    for word in list(FILLER_WORDS) + list(extra_vocab or ()):
        rng = make_rng(derive_seed(seed, "filler", normalize_token(word)))
        add_word(word, _unit(rng.standard_normal(dim)))

    word_vectors = np.vstack(vectors).astype(np.float32)
    bucket_vectors = fit_bucket_vectors(
        vocab, word_vectors, buckets, DEFAULT_MIN_N, DEFAULT_MAX_N
    )
    return EmbeddingModel(
        name=name,
        vocab=vocab,
        word_vectors=word_vectors,
        bucket_vectors=bucket_vectors,
        min_n=DEFAULT_MIN_N,
        max_n=DEFAULT_MAX_N,
        subword_weight=subword_weight,
    )


def _unit(vector: np.ndarray) -> np.ndarray:
    return vector / np.linalg.norm(vector)
