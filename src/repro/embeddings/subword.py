"""Hashed character n-gram (subword) machinery, as in fastText.

fastText represents a word as the sum of its word vector and the vectors of
its character n-grams, each n-gram hashed into a fixed number of buckets.
The hash must be deterministic across processes, so we use FNV-1a rather
than Python's randomized ``hash()``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.parallel import map_chunks
from repro.utils.text import ngrams

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: fastText defaults: n-grams of length 3..5.
DEFAULT_MIN_N = 3
DEFAULT_MAX_N = 5
#: Number of hash buckets for subword vectors (prime, to spread collisions).
DEFAULT_BUCKETS = 20011


def fnv1a(text: str) -> int:
    """64-bit FNV-1a hash of ``text`` (deterministic across runs)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def fnv1a_batch(texts) -> np.ndarray:
    """64-bit FNV-1a of every string in ``texts``, as a ``uint64`` array.

    Bit-identical to :func:`fnv1a`, but the per-byte mix runs as NumPy
    ``uint64`` array ops (wrapping multiply == mod 2**64): strings are
    grouped by encoded length and each group is hashed with one xor/mul
    pair per byte *position* instead of per byte — the batch subword
    kernel's replacement for millions of interpreted-Python hash loops.
    """
    count = len(texts)
    out = np.empty(count, dtype=np.uint64)
    if count == 0:
        return out
    encoded = [text.encode("utf-8") for text in texts]
    lengths = np.fromiter((len(raw) for raw in encoded),
                          dtype=np.int64, count=count)
    order = np.argsort(lengths, kind="stable")
    ordered = [encoded[i] for i in order.tolist()]
    sorted_lengths = lengths[order]
    # group by the lengths that actually occur (one long string must not
    # cost an O(max_len) scan over empty groups)
    distinct = np.unique(lengths)
    group_starts = np.searchsorted(sorted_lengths, distinct, side="left")
    group_stops = np.searchsorted(sorted_lengths, distinct, side="right")
    prime = np.uint64(_FNV_PRIME)
    for length, start, stop in zip(distinct.tolist(),
                                   group_starts.tolist(),
                                   group_stops.tolist()):
        if length == 0:
            out[order[start:stop]] = np.uint64(_FNV_OFFSET)
            continue
        stacked = np.frombuffer(
            b"".join(ordered[start:stop]), dtype=np.uint8
        ).reshape(stop - start, length).astype(np.uint64)
        value = np.full(stop - start, _FNV_OFFSET, dtype=np.uint64)
        for position in range(length):
            value ^= stacked[:, position]
            value *= prime
        out[order[start:stop]] = value
    return out


def subword_ids(
    word: str,
    buckets: int = DEFAULT_BUCKETS,
    min_n: int = DEFAULT_MIN_N,
    max_n: int = DEFAULT_MAX_N,
) -> np.ndarray:
    """Bucket ids of the character n-grams of ``word``.

    Returns an ``int64`` array (possibly empty for very short words).
    Multi-word phrases hash each word's grams independently, mirroring how
    fastText treats tokens.
    """
    ids: list[int] = []
    for part in word.split():
        for gram in ngrams(part, min_n, max_n):
            ids.append(fnv1a(gram) % buckets)
    return np.asarray(ids, dtype=np.int64)


def subword_ids_batch(
    words,
    buckets: int = DEFAULT_BUCKETS,
    min_n: int = DEFAULT_MIN_N,
    max_n: int = DEFAULT_MAX_N,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket ids of the n-grams of every word, flattened across the batch.

    Returns ``(ids, owners)``: equal-length ``int64`` arrays where
    ``ids[k]`` is a bucket id and ``owners[k]`` the index into ``words``
    of the token that produced it.  The flattened ``(token, gram)`` layout
    feeds segment-sum kernels (``np.add.reduceat`` + ``np.bincount``) so a
    whole batch's subword means come out of a handful of vectorized calls.
    ``owners`` is nondecreasing, which is what lets callers segment-sum
    with ``reduceat`` instead of the much slower unbuffered ``np.add.at``.
    Within one word the grams form the same *multiset* :func:`subword_ids`
    yields but may be ordered differently (the ASCII fast path hashes all
    windows of one size across the batch at once); segment sums and means
    are order-insensitive, so callers must not rely on gram order.

    ``workers > 1`` splits large batches into owner-aligned chunks
    hashed on a thread pool (:func:`repro.utils.parallel.map_chunks`;
    the large-array ``uint64`` ops release the GIL — small batches stay
    serial under the shared min-items gate).  The per-word result is
    identical to the serial path, and owners stay nondecreasing because
    chunks are concatenated in order.

    ASCII parts (the overwhelming case) are hashed without materializing
    per-gram strings at all: each decorated part is encoded once into a
    shared byte buffer and every n-gram window is hashed with NumPy
    ``uint64`` gathers over it.
    """
    if workers > 1 and not isinstance(words, (list, tuple)):
        words = list(words)   # generators have no len/slice
    if workers > 1 and len(words) > 1:

        def hash_chunk(start: int, stop: int):
            ids, owners = subword_ids_batch(words[start:stop], buckets,
                                            min_n, max_n)
            return ids, owners + start

        parts = map_chunks(len(words), workers, hash_chunk)
        if len(parts) == 1:   # gated to one serial chunk: no re-copy
            return parts[0]
        return (np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]))

    ascii_parts: list[bytes] = []
    ascii_owner: list[int] = []
    slow_grams: list[str] = []
    slow_counts: list[int] = []
    slow_owner: list[int] = []
    for index, word in enumerate(words):
        for part in word.split():
            if part.isascii():
                ascii_parts.append(b"<%s>" % part.encode("ascii"))
                ascii_owner.append(index)
            else:
                # byte windows != char windows for multibyte UTF-8; hash
                # these (rare) parts gram-by-gram like subword_ids does.
                grams = ngrams(part, min_n, max_n)
                slow_grams.extend(grams)
                slow_counts.append(len(grams))
                slow_owner.append(index)

    ids_chunks: list[np.ndarray] = []
    owner_chunks: list[np.ndarray] = []
    bucket_count = np.uint64(buckets)
    if ascii_parts:
        lengths = np.fromiter((len(p) for p in ascii_parts),
                              dtype=np.int64, count=len(ascii_parts))
        buffer = np.frombuffer(b"".join(ascii_parts),
                               dtype=np.uint8).astype(np.uint64)
        part_starts = np.concatenate(
            ([0], np.cumsum(lengths)))[:-1]
        part_owner = np.asarray(ascii_owner, dtype=np.int64)
        prime = np.uint64(_FNV_PRIME)
        for size in range(min_n, max_n + 1):
            per_part = np.maximum(lengths - size + 1, 0)
            total = int(per_part.sum())
            if total == 0:
                continue
            gram_offsets = np.concatenate(
                ([0], np.cumsum(per_part)))[:-1]
            intra = (np.arange(total, dtype=np.int64)
                     - np.repeat(gram_offsets, per_part))
            window_starts = np.repeat(part_starts, per_part) + intra
            value = np.full(total, _FNV_OFFSET, dtype=np.uint64)
            for position in range(size):
                value ^= buffer[window_starts + position]
                value *= prime
            ids_chunks.append((value % bucket_count).astype(np.int64))
            owner_chunks.append(np.repeat(part_owner, per_part))
    if slow_grams:
        ids_chunks.append(
            (fnv1a_batch(slow_grams) % bucket_count).astype(np.int64))
        owner_chunks.append(np.repeat(
            np.asarray(slow_owner, dtype=np.int64),
            np.asarray(slow_counts, dtype=np.int64)))
    if not ids_chunks:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    ids = np.concatenate(ids_chunks)
    owners = np.concatenate(owner_chunks)
    order = np.argsort(owners, kind="stable")
    return ids[order], owners[order]


def shared_gram_fraction(word_a: str, word_b: str, min_n: int = DEFAULT_MIN_N,
                         max_n: int = DEFAULT_MAX_N) -> float:
    """Jaccard overlap of the n-gram sets of two words.

    Used by tests to check that misspellings genuinely share most subwords
    with their source word, which is what makes OOV embedding work.
    """
    grams_a = set(ngrams(word_a, min_n, max_n))
    grams_b = set(ngrams(word_b, min_n, max_n))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    return len(grams_a & grams_b) / len(union)
