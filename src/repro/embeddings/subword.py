"""Hashed character n-gram (subword) machinery, as in fastText.

fastText represents a word as the sum of its word vector and the vectors of
its character n-grams, each n-gram hashed into a fixed number of buckets.
The hash must be deterministic across processes, so we use FNV-1a rather
than Python's randomized ``hash()``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.text import ngrams

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: fastText defaults: n-grams of length 3..5.
DEFAULT_MIN_N = 3
DEFAULT_MAX_N = 5
#: Number of hash buckets for subword vectors (prime, to spread collisions).
DEFAULT_BUCKETS = 20011


def fnv1a(text: str) -> int:
    """64-bit FNV-1a hash of ``text`` (deterministic across runs)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def subword_ids(
    word: str,
    buckets: int = DEFAULT_BUCKETS,
    min_n: int = DEFAULT_MIN_N,
    max_n: int = DEFAULT_MAX_N,
) -> np.ndarray:
    """Bucket ids of the character n-grams of ``word``.

    Returns an ``int64`` array (possibly empty for very short words).
    Multi-word phrases hash each word's grams independently, mirroring how
    fastText treats tokens.
    """
    ids: list[int] = []
    for part in word.split():
        for gram in ngrams(part, min_n, max_n):
            ids.append(fnv1a(gram) % buckets)
    return np.asarray(ids, dtype=np.int64)


def shared_gram_fraction(word_a: str, word_b: str, min_n: int = DEFAULT_MIN_N,
                         max_n: int = DEFAULT_MAX_N) -> float:
    """Jaccard overlap of the n-gram sets of two words.

    Used by tests to check that misspellings genuinely share most subwords
    with their source word, which is what makes OOV embedding work.
    """
    grams_a = set(ngrams(word_a, min_n, max_n))
    grams_b = set(ngrams(word_b, min_n, max_n))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    return len(grams_a & grams_b) / len(union)
