"""Skip-gram with negative sampling, in pure NumPy.

Demonstrates the genuine training path for representation models
(paper §III: "use models pre-trained ... and fine-tune them to the
particular task"): the test-suite trains on a synthetic corpus and checks
that synonyms cluster.  Not built for web-scale speed — built to be
correct, deterministic, and readable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.embeddings.model import EmbeddingModel, fit_bucket_vectors
from repro.embeddings.subword import DEFAULT_BUCKETS
from repro.utils.rng import derive_seed, make_rng


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`SkipGramTrainer`."""

    dim: int = 32
    window: int = 3
    negatives: int = 5
    epochs: int = 5
    learning_rate: float = 0.03
    min_count: int = 1
    batch_size: int = 1024
    buckets: int = DEFAULT_BUCKETS
    seed: int = 13
    unigram_power: float = 0.75

    def validate(self) -> None:
        if self.dim <= 0 or self.window <= 0 or self.epochs <= 0:
            raise ModelError("dim, window and epochs must be positive")
        if self.negatives <= 0:
            raise ModelError("negative sample count must be positive")


class SkipGramTrainer:
    """Trains an :class:`EmbeddingModel` on a token-list corpus."""

    def __init__(self, config: TrainConfig | None = None):
        self.config = config or TrainConfig()
        self.config.validate()
        self.loss_history: list[float] = []

    def fit(self, corpus: list[list[str]], name: str = "trained") -> EmbeddingModel:
        """Train and return a model (subword buckets fitted post hoc)."""
        config = self.config
        vocab = self._build_vocab(corpus)
        if not vocab:
            raise ModelError("corpus produced an empty vocabulary")
        pairs = self._build_pairs(corpus, vocab)
        if pairs.shape[0] == 0:
            raise ModelError("corpus produced no skip-gram pairs")
        noise_table = self._noise_distribution(corpus, vocab)

        rng = make_rng(derive_seed(config.seed, "init"))
        scale = 1.0 / config.dim
        w_in = rng.uniform(-scale, scale, size=(len(vocab), config.dim))
        w_out = np.zeros((len(vocab), config.dim))

        order_rng = make_rng(derive_seed(config.seed, "order"))
        neg_rng = make_rng(derive_seed(config.seed, "negatives"))
        self.loss_history = []
        for epoch in range(config.epochs):
            order = order_rng.permutation(pairs.shape[0])
            epoch_loss = 0.0
            for start in range(0, pairs.shape[0], config.batch_size):
                batch = pairs[order[start:start + config.batch_size]]
                epoch_loss += self._step(batch, w_in, w_out, noise_table,
                                         neg_rng)
            self.loss_history.append(epoch_loss / pairs.shape[0])

        word_vectors = w_in.astype(np.float32)
        bucket_vectors = fit_bucket_vectors(vocab, word_vectors, config.buckets)
        return EmbeddingModel(
            name=name,
            vocab=vocab,
            word_vectors=word_vectors,
            bucket_vectors=bucket_vectors,
        )

    # ------------------------------------------------------------------
    def _step(
        self,
        batch: np.ndarray,
        w_in: np.ndarray,
        w_out: np.ndarray,
        noise_table: np.ndarray,
        neg_rng: np.random.Generator,
    ) -> float:
        """One SGD step over a ``(B, 2)`` batch of (center, context) pairs."""
        config = self.config
        centers = batch[:, 0]
        contexts = batch[:, 1]
        negatives = neg_rng.choice(
            noise_table.shape[0],
            size=(batch.shape[0], config.negatives),
            p=noise_table,
        )

        v_c = w_in[centers]                      # (B, d)
        u_pos = w_out[contexts]                  # (B, d)
        u_neg = w_out[negatives]                 # (B, k, d)

        pos_score = _sigmoid(np.einsum("bd,bd->b", v_c, u_pos))
        neg_score = _sigmoid(np.einsum("bkd,bd->bk", u_neg, v_c))

        grad_pos = (pos_score - 1.0)[:, None]          # (B, 1)
        grad_neg = neg_score[:, :, None]               # (B, k, 1)

        grad_center = grad_pos * u_pos + np.einsum("bk,bkd->bd",
                                                   neg_score, u_neg)
        # Clip per-example gradients: np.add.at accumulates duplicate
        # center/context rows within a batch, which can otherwise diverge.
        np.clip(grad_center, -1.0, 1.0, out=grad_center)
        lr = config.learning_rate
        np.add.at(w_out, contexts, -lr * grad_pos * v_c)
        np.add.at(w_out, negatives.ravel(),
                  (-lr * grad_neg * v_c[:, None, :]).reshape(-1, w_out.shape[1]))
        np.add.at(w_in, centers, -lr * grad_center)

        eps = 1e-10
        loss = (-np.log(pos_score + eps).sum()
                - np.log(1.0 - neg_score + eps).sum())
        return float(loss)

    def _build_vocab(self, corpus: list[list[str]]) -> dict[str, int]:
        counts = Counter(token for sentence in corpus for token in sentence)
        vocab: dict[str, int] = {}
        for token, count in sorted(counts.items()):
            if count >= self.config.min_count:
                vocab[token] = len(vocab)
        return vocab

    def _build_pairs(
        self, corpus: list[list[str]], vocab: dict[str, int]
    ) -> np.ndarray:
        pairs: list[tuple[int, int]] = []
        window = self.config.window
        for sentence in corpus:
            ids = [vocab[t] for t in sentence if t in vocab]
            for center_pos, center in enumerate(ids):
                lo = max(0, center_pos - window)
                hi = min(len(ids), center_pos + window + 1)
                for context_pos in range(lo, hi):
                    if context_pos != center_pos:
                        pairs.append((center, ids[context_pos]))
        return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)

    def _noise_distribution(
        self, corpus: list[list[str]], vocab: dict[str, int]
    ) -> np.ndarray:
        counts = np.zeros(len(vocab))
        frequency = Counter(t for sentence in corpus for t in sentence)
        for token, index in vocab.items():
            counts[index] = frequency[token]
        weights = counts ** self.config.unigram_power
        return weights / weights.sum()


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
