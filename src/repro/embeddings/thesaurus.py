"""Concept thesaurus: the semantic ground truth for the whole reproduction.

The paper's Table I shows categories and the "semantic matches" a
representation model may output (``dog -> dog, canine, golden retriever,
puppy``; ``clothes -> boots, parka, windbreaker, coat`` ...).  The thesaurus
encodes exactly that structure — leaf concepts with synonym surface forms,
plus hypernym concepts over them — and doubles as:

- the anchor set for the synthetic pretrained embedding model,
- the vocabulary of every synthetic workload (retail products, knowledge
  base labels, image object labels),
- ground truth for match/consolidation quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.utils.text import normalize_token


@dataclass(frozen=True)
class Concept:
    """A concept with its surface forms.

    ``children`` is non-empty for hypernyms (``animal`` over ``dog``/``cat``).
    The first surface form is the canonical name.
    """

    name: str
    forms: tuple[str, ...]
    children: tuple[str, ...] = ()

    @property
    def canonical(self) -> str:
        return self.forms[0]

    @property
    def is_hypernym(self) -> bool:
        return bool(self.children)


@dataclass
class Thesaurus:
    """A set of concepts with a (single-level) hypernym hierarchy."""

    concepts: dict[str, Concept] = field(default_factory=dict)

    def add(self, concept: Concept) -> None:
        if concept.name in self.concepts:
            raise ModelError(f"duplicate concept {concept.name!r}")
        self.concepts[concept.name] = concept

    def __contains__(self, name: str) -> bool:
        return name in self.concepts

    def __getitem__(self, name: str) -> Concept:
        try:
            return self.concepts[name]
        except KeyError:
            raise ModelError(f"unknown concept {name!r}") from None

    def __iter__(self):
        return iter(self.concepts.values())

    def __len__(self) -> int:
        return len(self.concepts)

    @property
    def leaves(self) -> list[Concept]:
        return [c for c in self if not c.is_hypernym]

    @property
    def hypernyms(self) -> list[Concept]:
        return [c for c in self if c.is_hypernym]

    def validate(self) -> None:
        """Check referential integrity of the hierarchy."""
        for concept in self.hypernyms:
            for child in concept.children:
                if child not in self.concepts:
                    raise ModelError(
                        f"hypernym {concept.name!r} references unknown "
                        f"child {child!r}"
                    )
                if self.concepts[child].is_hypernym:
                    raise ModelError(
                        f"hierarchy must be single-level: {concept.name!r} "
                        f"-> {child!r} is hypernym-over-hypernym"
                    )

    def concept_of(self, form: str) -> Concept | None:
        """The concept owning surface form ``form`` (None if unknown)."""
        return self._form_index().get(normalize_token(form))

    def all_forms(self) -> list[str]:
        """Every surface form in the thesaurus (deduplicated, ordered)."""
        seen: dict[str, None] = {}
        for concept in self:
            for form in concept.forms:
                seen.setdefault(normalize_token(form), None)
        return list(seen)

    def synonyms_of(self, form: str) -> set[str]:
        """Other surface forms of the same concept (empty set if unknown)."""
        concept = self.concept_of(form)
        if concept is None:
            return set()
        normalized = normalize_token(form)
        return {normalize_token(f) for f in concept.forms} - {normalized}

    def hyponym_forms(self, hypernym_name: str) -> set[str]:
        """All surface forms below a hypernym (its children's forms)."""
        concept = self[hypernym_name]
        forms: set[str] = set()
        for child in concept.children:
            forms.update(normalize_token(f) for f in self[child].forms)
        return forms

    def parent_of(self, concept_name: str) -> Concept | None:
        """The hypernym over ``concept_name`` (None for roots/hypernyms)."""
        for concept in self.hypernyms:
            if concept_name in concept.children:
                return concept
        return None

    def _form_index(self) -> dict[str, Concept]:
        index: dict[str, Concept] = {}
        for concept in self:
            for form in concept.forms:
                index.setdefault(normalize_token(form), concept)
        return index


def default_thesaurus() -> Thesaurus:
    """The thesaurus used throughout the reproduction.

    Includes every category/match of the paper's Table I verbatim, extended
    with more concepts so workloads have realistic breadth.
    """
    thesaurus = Thesaurus()
    add = thesaurus.add

    # --- Table I concepts (verbatim forms) -------------------------------
    add(Concept("dog", ("dog", "canine", "golden retriever", "puppy", "hound")))
    add(Concept("cat", ("cat", "maine coon", "feline", "kitten", "tabby")))
    add(Concept("bird", ("bird", "parrot", "sparrow", "avian", "finch")))
    add(Concept("animal", ("animal",), children=("dog", "cat", "bird")))

    add(Concept("shoes", ("shoes", "boots", "sneakers", "oxfords", "lace-ups",
                          "trainers")))
    add(Concept("jacket", ("jacket", "blazer", "coat", "parka", "windbreaker",
                           "anorak")))
    add(Concept("shirt", ("shirt", "tee", "t-shirt", "blouse", "polo")))
    add(Concept("trousers", ("trousers", "pants", "jeans", "slacks", "chinos")))
    add(Concept("dress", ("dress", "gown", "frock", "sundress")))
    add(Concept("clothes", ("clothes", "clothing", "apparel", "garment"),
                children=("shoes", "jacket", "shirt", "trousers", "dress")))

    # --- Additional domains for workload breadth -------------------------
    add(Concept("phone", ("phone", "smartphone", "handset", "mobile phone",
                          "cellphone")))
    add(Concept("laptop", ("laptop", "notebook", "ultrabook", "macbook")))
    add(Concept("camera", ("camera", "dslr", "camcorder", "mirrorless camera")))
    add(Concept("electronics", ("electronics", "gadget", "device"),
                children=("phone", "laptop", "camera")))

    add(Concept("chair", ("chair", "armchair", "stool", "recliner")))
    add(Concept("sofa", ("sofa", "couch", "settee", "loveseat")))
    add(Concept("desk", ("desk", "writing table", "workbench", "bureau")))
    add(Concept("furniture", ("furniture", "furnishing"),
                children=("chair", "sofa", "desk")))

    add(Concept("fruit", ("fruit", "apple", "banana", "pear", "mango")))
    add(Concept("vegetable", ("vegetable", "carrot", "spinach", "zucchini",
                              "broccoli")))
    add(Concept("food", ("food", "groceries", "produce"),
                children=("fruit", "vegetable")))

    add(Concept("car", ("car", "automobile", "sedan", "hatchback", "suv")))
    add(Concept("bicycle", ("bicycle", "bike", "roadbike", "tandem")))
    add(Concept("vehicle", ("vehicle", "transport"),
                children=("car", "bicycle")))

    add(Concept("watch", ("watch", "wristwatch", "chronograph", "timepiece")))
    add(Concept("bag", ("bag", "handbag", "backpack", "tote", "satchel")))
    add(Concept("hat", ("hat", "cap", "beanie", "fedora")))
    add(Concept("accessories", ("accessories", "accessory"),
                children=("watch", "bag", "hat")))

    thesaurus.validate()
    return thesaurus


#: The paper's Table I, verbatim: category -> expected semantic matches.
TABLE_I = {
    "dog": ["dog", "canine", "golden retriever", "puppy"],
    "cat": ["cat", "maine coon", "feline", "kitten"],
    "animal": ["cat", "dog", "golden retriever", "feline"],
    "shoes": ["boots", "sneakers", "oxfords", "lace-ups"],
    "jacket": ["blazer", "coat", "parka", "windbreaker"],
    "clothes": ["boots", "parka", "windbreaker", "coat"],
}
