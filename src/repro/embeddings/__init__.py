"""Representation models for context-rich processing (paper §III).

The paper assumes a fastText-like representation model: every string maps to
a point in a latent vector space where cosine similarity captures *context*
similarity — synonyms, hypernyms, alternative spellings, and misspellings.

This package provides that substrate, built from scratch:

- :class:`~repro.embeddings.model.EmbeddingModel` — word vectors plus hashed
  character n-gram (subword) vectors, fastText-style, so out-of-vocabulary
  misspellings land near their intended word.
- :func:`~repro.embeddings.pretrained.build_pretrained_model` — a
  deterministic synthetic substitute for "fastText trained on Wikipedia"
  (documented in DESIGN.md), anchored on a concept
  :class:`~repro.embeddings.thesaurus.Thesaurus`.
- :class:`~repro.embeddings.trainer.SkipGramTrainer` — a real skip-gram
  negative-sampling trainer (pure NumPy) demonstrating the full training
  path on generated corpora.
- :class:`~repro.embeddings.registry.ModelRegistry` — named models, so
  queries can say ``USING MODEL 'wiki-ft-100'``.
"""

from repro.embeddings.model import EmbeddingModel
from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.registry import ModelRegistry
from repro.embeddings.thesaurus import Concept, Thesaurus, default_thesaurus
from repro.embeddings.trainer import SkipGramTrainer, TrainConfig
from repro.embeddings.corpus import CorpusGenerator

__all__ = [
    "EmbeddingModel",
    "build_pretrained_model",
    "ModelRegistry",
    "Concept",
    "Thesaurus",
    "default_thesaurus",
    "SkipGramTrainer",
    "TrainConfig",
    "CorpusGenerator",
]
