"""Embedding model persistence: save/load to a single ``.npz`` file.

Pretrained models are session-independent artifacts ("obtaining
high-quality models ... as a commodity resource", §III); persistence lets
a pipeline build one once and ship it, exactly like distributing fastText
``.bin`` files.  Vocabulary order, vectors, subword buckets, and every
hyper-parameter round-trip bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.embeddings.model import EmbeddingModel

_FORMAT_VERSION = 1


def save_model(model: EmbeddingModel, path: str | Path) -> Path:
    """Serialize ``model`` to ``path`` (``.npz``)."""
    path = Path(path)
    vocab_words = [None] * len(model.vocab)
    for word, index in model.vocab.items():
        vocab_words[index] = word
    if any(word is None for word in vocab_words):
        raise ModelError("model vocabulary has gaps; cannot serialize")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "name": model.name,
        "min_n": model.min_n,
        "max_n": model.max_n,
        "subword_weight": model.subword_weight,
    }
    np.savez_compressed(
        path,
        word_vectors=model.word_vectors,
        bucket_vectors=model.bucket_vectors,
        vocab=np.asarray(vocab_words, dtype=object),
        metadata=np.asarray([json.dumps(metadata)], dtype=object),
    )
    # np.savez appends .npz when missing; normalize the returned path
    return path if path.suffix == ".npz" else path.with_name(
        path.name + ".npz")


def load_model(path: str | Path) -> EmbeddingModel:
    """Load a model serialized by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"no model file at {path}")
    with np.load(path, allow_pickle=True) as archive:
        try:
            metadata = json.loads(str(archive["metadata"][0]))
            vocab_words = archive["vocab"].tolist()
            word_vectors = archive["word_vectors"]
            bucket_vectors = archive["bucket_vectors"]
        except KeyError as exc:
            raise ModelError(f"{path} is not a repro model file") from exc
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {metadata.get('format_version')!r}"
        )
    vocab = {word: index for index, word in enumerate(vocab_words)}
    return EmbeddingModel(
        name=metadata["name"],
        vocab=vocab,
        word_vectors=word_vectors.astype(np.float32),
        bucket_vectors=bucket_vectors.astype(np.float32),
        min_n=int(metadata["min_n"]),
        max_n=int(metadata["max_n"]),
        subword_weight=float(metadata["subword_weight"]),
    )
