"""Named model registry: queries reference models as ``USING MODEL 'name'``."""

from __future__ import annotations

from repro.errors import ModelError
from repro.embeddings.model import EmbeddingModel


class ModelRegistry:
    """Holds the representation models available to a session."""

    def __init__(self):
        self._models: dict[str, EmbeddingModel] = {}

    def register(self, model: EmbeddingModel, name: str | None = None,
                 replace: bool = False) -> str:
        """Register ``model`` under ``name`` (default: the model's name)."""
        key = name or model.name
        if key in self._models and not replace:
            raise ModelError(f"model {key!r} already registered")
        self._models[key] = model
        return key

    def get(self, name: str) -> EmbeddingModel:
        try:
            return self._models[name]
        except KeyError:
            known = ", ".join(sorted(self._models)) or "<none>"
            raise ModelError(
                f"unknown model {name!r}; registered models: {known}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)


def default_registry(seed: int = 7) -> ModelRegistry:
    """Registry preloaded with the synthetic pretrained model.

    Imported lazily to avoid a module-level build cost for users who bring
    their own models.
    """
    from repro.embeddings.pretrained import build_pretrained_model

    registry = ModelRegistry()
    registry.register(build_pretrained_model(seed=seed))
    return registry
