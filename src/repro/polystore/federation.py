"""Federation: registering polystore sources into one catalog.

The engine queries everything through the catalog; federation is the thin
layer that materializes source views under qualified names
(``source.table``), recording which catalog entries belong to which
source.
"""

from __future__ import annotations

from repro.errors import SourceError
from repro.polystore.source import DataSource
from repro.storage.catalog import Catalog


class Federation:
    """Tracks sources and their catalog registrations."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.sources: dict[str, DataSource] = {}
        self._registered: dict[str, list[str]] = {}

    def add_source(self, source: DataSource, materialize: bool = True) -> None:
        if source.name in self.sources:
            raise SourceError(f"source {source.name!r} already federated")
        self.sources[source.name] = source
        self._registered[source.name] = []
        if materialize:
            self.materialize(source.name)

    def materialize(self, source_name: str) -> list[str]:
        """(Re)materialize every view of a source into the catalog."""
        source = self.source(source_name)
        names = []
        for table_name in source.table_names():
            qualified = source.qualified_name(table_name)
            self.catalog.register(qualified, source.table(table_name),
                                  replace=True)
            names.append(qualified)
        self._registered[source_name] = names
        return names

    def source(self, name: str) -> DataSource:
        try:
            return self.sources[name]
        except KeyError:
            raise SourceError(
                f"unknown source {name!r}; federated: "
                f"{sorted(self.sources)}"
            ) from None

    def registered_tables(self, source_name: str) -> list[str]:
        return list(self._registered.get(source_name, []))
