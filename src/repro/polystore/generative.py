"""A generative model as a data source (paper §I/§III).

"Models such as GPT-3 can also represent data sources, generating new
data" — and "generative models can produce output and data on their own",
which is exactly why online consolidation is unavoidable: generated text
mentions concepts through arbitrary surface forms.

:class:`GenerativeModelSource` simulates that: prompted with a concept, it
emits template-composed sentences that mention the concept through random
synonym forms (and, for hypernym prompts, hyponym forms), with per-sample
latency accounting like the object detector.  Downstream, the emitted
``mention`` column joins with clean data only through semantic operators
— the generated rows carry ground truth so tests and benchmarks can score
that integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embeddings.pretrained import FILLER_WORDS
from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.errors import SourceError
from repro.polystore.source import DataSource
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.rng import derive_seed, make_rng

_SAMPLE_SCHEMA = Schema([
    Field("sample_id", DataType.INT64),
    Field("prompt", DataType.STRING),
    Field("text", DataType.STRING),
    Field("mention", DataType.STRING),
    Field("true_concept", DataType.STRING),
])

_TEMPLATES = (
    "the {adj} {mention} was {verb} near the {noun}",
    "a {noun} review praised the {mention} as {adj}",
    "customers {verb} the {mention} despite the {noun}",
    "{adj} {mention} listed beside a {noun}",
)

_ADJECTIVES = ("new", "popular", "affordable", "premium", "classic",
               "vintage")
_VERBS = ("photographed", "returned", "recommended", "purchased",
          "reviewed")


@dataclass
class GenerativeModelSource(DataSource):
    """Simulated generative model exposed as a polystore source."""

    thesaurus: Thesaurus = field(default_factory=default_thesaurus)
    seed: int = 73
    seconds_per_sample: float = 0.2
    samples_generated: int = 0
    simulated_seconds: float = 0.0

    def __init__(self, name: str = "genmodel",
                 thesaurus: Thesaurus | None = None, seed: int = 73,
                 seconds_per_sample: float = 0.2):
        super().__init__(name)
        self.thesaurus = thesaurus or default_thesaurus()
        self.seed = seed
        self.seconds_per_sample = seconds_per_sample
        self.samples_generated = 0
        self.simulated_seconds = 0.0
        self._materialized: list[dict] = []

    # ------------------------------------------------------------------
    def generate(self, prompt: str, n_samples: int) -> Table:
        """'Ask the model' for ``n_samples`` rows about ``prompt``.

        ``prompt`` must resolve to a thesaurus concept (any surface form);
        hypernym prompts draw mentions from hyponym concepts too — the
        context-rich answering the paper warns needs consolidation.
        """
        concept = self.thesaurus.concept_of(prompt)
        if concept is None:
            raise SourceError(
                f"generative source cannot ground prompt {prompt!r} "
                "in its knowledge"
            )
        pool = [concept.name] if not concept.is_hypernym else \
            list(concept.children)
        rows = []
        for _ in range(n_samples):
            sample_id = self.samples_generated
            rng = make_rng(derive_seed(self.seed, "sample", sample_id))
            target = self.thesaurus[pool[int(rng.integers(len(pool)))]]
            mention = target.forms[int(rng.integers(len(target.forms)))]
            template = _TEMPLATES[int(rng.integers(len(_TEMPLATES)))]
            text = template.format(
                adj=_ADJECTIVES[int(rng.integers(len(_ADJECTIVES)))],
                verb=_VERBS[int(rng.integers(len(_VERBS)))],
                noun=FILLER_WORDS[int(rng.integers(len(FILLER_WORDS)))],
                mention=mention,
            )
            rows.append({
                "sample_id": sample_id,
                "prompt": prompt,
                "text": text,
                "mention": mention,
                "true_concept": target.name,
            })
            self.samples_generated += 1
            self.simulated_seconds += self.seconds_per_sample
        self._materialized.extend(rows)
        return Table.from_rows(rows, _SAMPLE_SCHEMA)

    # ------------------------------------------------------------------
    # DataSource interface: everything generated so far
    # ------------------------------------------------------------------
    def table_names(self) -> list[str]:
        return ["samples"]

    def table(self, table_name: str) -> Table:
        if table_name != "samples":
            raise SourceError(
                f"generative source exposes only 'samples', "
                f"not {table_name!r}"
            )
        if not self._materialized:
            return Table.empty(_SAMPLE_SCHEMA)
        return Table.from_rows(self._materialized, _SAMPLE_SCHEMA)
