"""Polystore data sources (paper Figure 1 / §IV).

The engine combines a traditional RDBMS source, a knowledge base curated
on a *different* vocabulary, and an image store whose content is reachable
only through model inference — the exact three-source setup of the
motivating example (Figure 2).
"""

from repro.polystore.source import DataSource
from repro.polystore.rdbms import RelationalSource
from repro.polystore.knowledge_base import KnowledgeBase, Triple
from repro.polystore.image_store import (
    DetectedObject,
    ImageStore,
    ObjectDetectionModel,
    SyntheticImage,
)
from repro.polystore.federation import Federation

__all__ = [
    "DataSource",
    "RelationalSource",
    "KnowledgeBase",
    "Triple",
    "DetectedObject",
    "ImageStore",
    "ObjectDetectionModel",
    "SyntheticImage",
    "Federation",
]
