"""The traditional RDBMS source: cleaned, golden, schema-ful tables."""

from __future__ import annotations

from repro.errors import SourceError
from repro.polystore.source import DataSource
from repro.storage.table import Table


class RelationalSource(DataSource):
    """A set of materialized relational tables."""

    def __init__(self, name: str, tables: dict[str, Table] | None = None):
        super().__init__(name)
        self._tables: dict[str, Table] = dict(tables or {})

    def add_table(self, table_name: str, table: Table,
                  replace: bool = False) -> None:
        if table_name in self._tables and not replace:
            raise SourceError(
                f"table {table_name!r} already exists in source {self.name!r}"
            )
        self._tables[table_name] = table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def table(self, table_name: str) -> Table:
        try:
            return self._tables[table_name]
        except KeyError:
            raise SourceError(
                f"source {self.name!r} has no table {table_name!r}; "
                f"available: {self.table_names()}"
            ) from None
