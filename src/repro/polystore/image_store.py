"""Image store + simulated object detection.

The paper's third source: "image storage of the products (from reviews,
other websites, or social media)" analyzed by an object-detection model.
Real pixels and a real detector are substituted (DESIGN.md §2) by
synthetic images carrying latent ground-truth objects and a
:class:`ObjectDetectionModel` that

- emits labels drawn from *its own vocabulary* (synonym surface forms of
  the ground-truth concept — detector label spaces never match RDBMS
  vocabularies, which is what makes the downstream join semantic),
- misses objects / hallucinates with configurable probability,
- attaches calibrated-ish confidences, and
- accounts a per-image inference cost, so "filter by date *before*
  detection" is a measurable optimization exactly as in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embeddings.thesaurus import Thesaurus, default_thesaurus
from repro.polystore.source import DataSource
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class SyntheticImage:
    """An 'image': identity, capture date, and latent ground truth."""

    image_id: int
    date_taken: int  # days since epoch (DataType.DATE storage value)
    true_objects: tuple[str, ...]  # concept names (not surface forms)


@dataclass
class DetectedObject:
    image_id: int
    label: str
    confidence: float


@dataclass
class ObjectDetectionModel:
    """Simulated detector with its own label vocabulary and error model."""

    thesaurus: Thesaurus = field(default_factory=default_thesaurus)
    miss_rate: float = 0.08
    hallucination_rate: float = 0.04
    seconds_per_image: float = 0.05
    seed: int = 31
    #: Accounting: inferences performed and simulated model time.
    images_processed: int = 0
    simulated_seconds: float = 0.0

    def detect(self, image: SyntheticImage) -> list[DetectedObject]:
        """Run 'inference' on one image."""
        rng = make_rng(derive_seed(self.seed, "detect", image.image_id))
        self.images_processed += 1
        self.simulated_seconds += self.seconds_per_image
        detections: list[DetectedObject] = []
        for concept_name in image.true_objects:
            if rng.uniform() < self.miss_rate:
                continue
            label = self._emit_label(concept_name, rng)
            confidence = float(rng.uniform(0.62, 0.99))
            detections.append(DetectedObject(image.image_id, label,
                                             round(confidence, 4)))
        if rng.uniform() < self.hallucination_rate:
            concepts = [c.name for c in self.thesaurus.leaves]
            fake = concepts[int(rng.integers(len(concepts)))]
            detections.append(DetectedObject(
                image.image_id, self._emit_label(fake, rng),
                round(float(rng.uniform(0.3, 0.6)), 4)))
        return detections

    def _emit_label(self, concept_name: str,
                    rng) -> str:
        """Detector vocabulary: any surface form of the concept."""
        forms = self.thesaurus[concept_name].forms
        return forms[int(rng.integers(len(forms)))]


_DETECTION_SCHEMA = Schema([
    Field("image_id", DataType.INT64),
    Field("date_taken", DataType.DATE),
    Field("label", DataType.STRING),
    Field("confidence", DataType.FLOAT64),
    Field("object_count", DataType.INT64),
])

_IMAGE_SCHEMA = Schema([
    Field("image_id", DataType.INT64),
    Field("date_taken", DataType.DATE),
])


class ImageStore(DataSource):
    """Holds synthetic images; detection happens lazily per query."""

    def __init__(self, name: str = "images",
                 images: list[SyntheticImage] | None = None):
        super().__init__(name)
        self.images: list[SyntheticImage] = list(images or [])

    def add(self, image: SyntheticImage) -> None:
        self.images.append(image)

    def __len__(self) -> int:
        return len(self.images)

    def table_names(self) -> list[str]:
        return ["metadata"]

    def table(self, table_name: str) -> Table:
        """The cheap, model-free view: image ids and capture dates."""
        if table_name != "metadata":
            from repro.errors import SourceError

            raise SourceError(
                f"image store exposes only 'metadata'; "
                f"detections require detect_table(model)"
            )
        rows = [{"image_id": img.image_id, "date_taken": img.date_taken}
                for img in self.images]
        if not rows:
            return Table.empty(_IMAGE_SCHEMA)
        return Table.from_rows(rows, _IMAGE_SCHEMA)

    def detect_table(self, model: ObjectDetectionModel,
                     after_date: int | None = None) -> Table:
        """Run detection and return one row per detected object.

        ``after_date`` is the pushdown hook: filtering images *before*
        inference skips model invocations entirely — the cost the
        motivating example's step 3 wants to avoid paying on the full
        corpus.
        """
        rows: list[dict] = []
        for image in self.images:
            if after_date is not None and image.date_taken <= after_date:
                continue
            detections = model.detect(image)
            for detection in detections:
                rows.append({
                    "image_id": image.image_id,
                    "date_taken": image.date_taken,
                    "label": detection.label,
                    "confidence": detection.confidence,
                    "object_count": len(detections),
                })
        if not rows:
            return Table.empty(_DETECTION_SCHEMA)
        return Table.from_rows(rows, _DETECTION_SCHEMA)
