"""Knowledge base source: subject-predicate-object triples.

The paper's motivating example supplements products with "a general
knowledge base ... curated and collected on a different and broader
dataset that does not precisely match the labels" — so KB labels are
surface-form *variants* of RDBMS values, and joining them is precisely the
semantic-join problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.polystore.source import DataSource
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType


@dataclass(frozen=True)
class Triple:
    subject: str
    predicate: str
    obj: str


_TRIPLE_SCHEMA = Schema([
    Field("subject", DataType.STRING),
    Field("predicate", DataType.STRING),
    Field("object", DataType.STRING),
])


class KnowledgeBase(DataSource):
    """In-memory triple store with pattern queries and a relational view."""

    def __init__(self, name: str = "kb"):
        super().__init__(name)
        self._triples: list[Triple] = []
        self._by_predicate: dict[str, list[Triple]] = {}

    def add(self, subject: str, predicate: str, obj: str) -> None:
        triple = Triple(subject, predicate, obj)
        self._triples.append(triple)
        self._by_predicate.setdefault(predicate, []).append(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def query(self, subject: str | None = None, predicate: str | None = None,
              obj: str | None = None) -> list[Triple]:
        """Pattern match with None as wildcard."""
        candidates = (self._by_predicate.get(predicate, [])
                      if predicate is not None else self._triples)
        return [
            t for t in candidates
            if (subject is None or t.subject == subject)
            and (obj is None or t.obj == obj)
        ]

    def subjects_of(self, predicate: str, obj: str) -> list[str]:
        """All subjects s with (s, predicate, obj)."""
        return [t.subject for t in self.query(predicate=predicate, obj=obj)]

    def table_names(self) -> list[str]:
        return ["triples"] + sorted(
            p for p in self._by_predicate
        )

    def table(self, table_name: str) -> Table:
        """``triples`` = all rows; a predicate name = its 2-column view."""
        if table_name == "triples":
            rows = [{"subject": t.subject, "predicate": t.predicate,
                     "object": t.obj} for t in self._triples]
            if not rows:
                return Table.empty(_TRIPLE_SCHEMA)
            return Table.from_rows(rows, _TRIPLE_SCHEMA)
        triples = self._by_predicate.get(table_name, [])
        schema = Schema([Field("subject", DataType.STRING),
                         Field("object", DataType.STRING)])
        rows = [{"subject": t.subject, "object": t.obj} for t in triples]
        if not rows:
            return Table.empty(schema)
        return Table.from_rows(rows, schema)
