"""Common interface for polystore sources."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.storage.table import Table


class DataSource(ABC):
    """A named source that can expose one or more relational views."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def table_names(self) -> list[str]:
        """Relational views this source can materialize."""

    @abstractmethod
    def table(self, table_name: str) -> Table:
        """Materialize one view as a columnar table."""

    def qualified_name(self, table_name: str) -> str:
        return f"{self.name}.{table_name}"
