"""Exception hierarchy for the context-rich analytical engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation violates a schema contract."""


class CatalogError(ReproError):
    """A catalog lookup failed (unknown table, duplicate registration...)."""


class ExpressionError(ReproError):
    """An expression is ill-typed or references an unknown column."""


class PlanError(ReproError):
    """A logical or physical plan is structurally invalid."""


class OptimizerError(ReproError):
    """The optimizer could not produce a valid plan."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class ModelError(ReproError):
    """An embedding or inference model is missing or misused."""


class IndexError_(ReproError):
    """A vector index is misconfigured or queried before being built."""


class ParseError(ReproError):
    """The SQL dialect parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Name resolution of a parsed query failed."""


class IntegrationError(ReproError):
    """Online data integration / consolidation failed."""


class HardwareError(ReproError):
    """Hardware topology or placement is invalid."""


class SourceError(ReproError):
    """A polystore data source failed or was misused."""


class ServerError(ReproError):
    """The serving layer was misused (closed server, bad configuration)."""


class AdmissionError(ServerError):
    """The scheduler refused a query: its admission queue is full."""
