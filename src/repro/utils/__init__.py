"""Shared utilities: deterministic RNG, timing, text, and parallelism."""

from repro.utils.parallel import (
    chunk_bounds,
    default_parallelism,
    kernel_workers,
    resolve_workers,
)
from repro.utils.rng import derive_seed, make_rng
from repro.utils.timing import Timer, timed
from repro.utils.text import normalize_token, tokenize

__all__ = [
    "chunk_bounds",
    "default_parallelism",
    "derive_seed",
    "kernel_workers",
    "make_rng",
    "resolve_workers",
    "Timer",
    "timed",
    "normalize_token",
    "tokenize",
]
