"""Shared utilities: deterministic RNG, timing, and text helpers."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.timing import Timer, timed
from repro.utils.text import normalize_token, tokenize

__all__ = [
    "derive_seed",
    "make_rng",
    "Timer",
    "timed",
    "normalize_token",
    "tokenize",
]
