"""Wall-clock timing helpers used by the profiler and the benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    The clock is injectable so tests (and the tracer's deterministic
    stubs) can drive it with fake time.

    >>> timer = Timer()
    >>> with timer.measure():
    ...     pass
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    calls: int = 0
    clock: Callable[[], float] = field(default=time.perf_counter,
                                       repr=False)
    _last: float = field(default=0.0, repr=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = self.clock()
        try:
            yield self
        finally:
            self._last = self.clock() - start
            self.elapsed += self._last
            self.calls += 1

    @property
    def last(self) -> float:
        """Duration of the most recent measured block, in seconds."""
        return self._last

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._last = 0.0


@contextmanager
def timed(sink: dict[str, float], key: str,
          clock: Callable[[], float] = time.perf_counter) -> Iterator[None]:
    """Measure a block and add the duration (seconds) into ``sink[key]``."""
    start = clock()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (clock() - start)
