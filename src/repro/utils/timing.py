"""Wall-clock timing helpers used by the profiler and the benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    >>> timer = Timer()
    >>> with timer.measure():
    ...     pass
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    calls: int = 0
    _last: float = field(default=0.0, repr=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._last = time.perf_counter() - start
            self.elapsed += self._last
            self.calls += 1

    @property
    def last(self) -> float:
        """Duration of the most recent measured block, in seconds."""
        return self._last

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._last = 0.0


@contextmanager
def timed(sink: dict[str, float], key: str) -> Iterator[None]:
    """Measure a block and add the duration (seconds) into ``sink[key]``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - start)
