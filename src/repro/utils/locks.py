"""Read-write locks for the engine's shared, read-mostly state.

The serving layer (``repro.server``) hands one set of embedding arenas,
vector-index caches, and catalog entries to every client session, so the
structures that PR 1-2 made fast for a single thread now need a
concurrency discipline.  The access pattern is heavily read-skewed —
thousands of cache gathers per arena growth, thousands of plan-cache
lookups per ``register_table`` — which is exactly the shape a
reader-writer lock serves: readers share, writers drain readers and run
alone.

Two primitives live here (``repro.utils`` so that storage/semantic
modules can use them without importing the server package, which sits
*above* them in the layering):

- :class:`RWLock` — a writer-preferring read-write lock built on one
  mutex + condition variable.  Writer preference keeps ``register_table``
  from starving under a stream of overlapping readers.
- :class:`StripedRWLock` — a fixed array of :class:`RWLock` stripes
  addressed by hashed key (model name, table name), so independent hot
  keys never contend on one lock while the memory cost stays bounded.

Lock hierarchy (canonical declarations in
``repro/analysis/lock_levels.py``, enforced by ``python -m
repro.analysis``; prose in ``docs/serving.md``.  Always acquire
downward, never upward):

1. scheduler / plan-cache mutexes
2. per-model striped locks (held around build + execute)
3. catalog lock (taken *under* the stripes during physical lowering)
4. leaf mutexes (embedding/index/result/kernel caches, counters,
   single-flight registries)
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager, contextmanager
from typing import Iterable, Iterator

#: Default stripe count: enough that a handful of hot models/tables
#: hash apart, small enough to be free to allocate eagerly.
DEFAULT_STRIPES = 16


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  A waiting writer blocks *new* readers (writer preference),
    so writers cannot starve behind a continuous reader stream.

    Reentrancy: not reentrant across modes — a thread holding the read
    lock must not request the write lock (classic upgrade deadlock).
    The engine's lock discipline (resolve reads fully, then retry under
    the write lock) avoids upgrades by construction.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0

    # -- reader side ---------------------------------------------------
    def acquire_read(self) -> None:
        with self._mutex:
            while self._active_writer or self._waiting_writers:
                self._readers_done.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._readers_done.notify_all()

    # -- writer side ---------------------------------------------------
    def acquire_write(self) -> None:
        with self._mutex:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    self._readers_done.wait()
            finally:
                self._waiting_writers -= 1
            self._active_writer = True

    def release_write(self) -> None:
        with self._mutex:
            self._active_writer = False
            self._readers_done.notify_all()

    # -- context managers ----------------------------------------------
    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class StripedRWLock:
    """A fixed bank of :class:`RWLock` stripes addressed by key hash.

    ``stripe(key)`` always maps one key to the same stripe, so a key's
    readers and writers serialize correctly; distinct keys *usually*
    land on distinct stripes (false sharing is possible but only costs
    throughput, never correctness).
    """

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError(f"stripe count must be positive, got {stripes}")
        self._stripes = tuple(RWLock() for _ in range(stripes))

    def __len__(self) -> int:
        return len(self._stripes)

    def stripe(self, key: str) -> RWLock:
        """The stripe lock guarding ``key``."""
        return self._stripes[hash(key) % len(self._stripes)]

    def read(self, key: str) -> AbstractContextManager[None]:
        """``with striped.read(key):`` — shared access to ``key``'s stripe."""
        return self.stripe(key).read()

    def write(self, key: str) -> AbstractContextManager[None]:
        """``with striped.write(key):`` — exclusive access to the stripe."""
        return self.stripe(key).write()

    def stripes_for(self, keys: Iterable[str]) -> list[RWLock]:
        """Deduped stripe locks for ``keys``, in **bank order**.

        This is the only sanctioned way to hold several stripes at
        once.  Deduplication matters because :class:`RWLock` is not
        reentrant: two keys hashing to one stripe must acquire it
        once, not twice (a second read acquire can deadlock behind a
        writer queued in between).  Bank order is a global total order,
        so any two multi-stripe acquirers lock in the same sequence
        and can never deadlock each other — sorting by *key* would not
        give that (key order and stripe order need not agree).
        """
        indices = sorted({hash(key) % len(self._stripes) for key in keys})
        return [self._stripes[index] for index in indices]
