"""Text normalization and tokenization shared by models and operators.

The embedding models, the semantic operators, and the synthetic workload
generators must agree on how raw strings become tokens; this module is the
single source of that agreement.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def normalize_token(token: str) -> str:
    """Lower-case and strip a single token.

    Multi-word phrases (``"golden retriever"``) are preserved as one unit;
    internal whitespace is collapsed to single spaces so phrase lookups are
    stable.
    """
    return " ".join(token.lower().split())


def tokenize(text: str) -> list[str]:
    """Split free text into normalized word tokens.

    Keeps intra-word hyphens and apostrophes (``"lace-ups"`` stays one
    token) — the same convention fastText-style subword models rely on.
    """
    return _TOKEN_RE.findall(text.lower())


def ngrams(word: str, n_min: int, n_max: int, *, boundary: bool = True) -> list[str]:
    """Character n-grams of ``word`` for ``n_min <= n <= n_max``.

    With ``boundary=True`` the word is wrapped in ``<`` and ``>`` markers as
    in fastText, so prefixes/suffixes are distinguishable from word-internal
    grams.
    """
    decorated = f"<{word}>" if boundary else word
    grams: list[str] = []
    for size in range(n_min, n_max + 1):
        if size > len(decorated):
            break
        for start in range(len(decorated) - size + 1):
            grams.append(decorated[start:start + size])
    return grams
