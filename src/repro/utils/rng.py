"""Deterministic random-number-generator helpers.

All stochastic components in the library (synthetic data, embedding noise,
LSH hyperplanes, k-means init, ...) receive an explicit seed and create
their generator through :func:`make_rng`.  Sub-component seeds are derived
with :func:`derive_seed` so that two components seeded from the same parent
never share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MAX_SEED = 2**63 - 1


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a NumPy ``Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (seeded from entropy — only appropriate for throwaway use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(parent_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``parent_seed`` and a path of names.

    The derivation is stable across processes and Python versions (uses
    SHA-256 rather than ``hash()``), so components keep identical streams
    between runs.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(parent_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") % _MAX_SEED
