"""Shared parallelism configuration for thread-pooled kernels.

One place decides how many workers a session's kernels use, so the
batch subword/segment-sum path, ``join_parallel``, and the optimizer's
cost model all see the *same* number instead of scattered hardcoded
defaults.  NumPy's BLAS kernels and most large-array ufuncs release the
GIL, so thread pools give genuine parallelism for the compute-heavy
stages; the clamp keeps tiny containers and huge hosts both sane.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

_T = TypeVar("_T")

#: Upper clamp for the derived default (beyond this, pool scheduling and
#: memory bandwidth dominate for our kernel sizes).
MAX_DEFAULT_WORKERS = 16

#: Below this many items a kernel stays serial: thread-pool setup costs
#: more than the work it would spread.
PARALLEL_MIN_ITEMS = 1024


def default_parallelism(clamp: int = MAX_DEFAULT_WORKERS) -> int:
    """CPU-derived worker count: cores visible to this process, clamped.

    Prefers the scheduler affinity mask (what containers actually grant)
    over the raw core count.
    """
    try:
        count = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        count = os.cpu_count() or 1
    return max(1, min(count, clamp))


def resolve_workers(requested: int | None) -> int:
    """Resolve a worker-count setting: ``None``/``0``/negative mean "use
    the CPU-derived default"; explicit positive counts pass through."""
    if requested is None or requested <= 0:
        return default_parallelism()
    return int(requested)


def kernel_workers(requested: int, n_items: int,
                   min_items: int = PARALLEL_MIN_ITEMS) -> int:
    """Effective workers for one kernel invocation over ``n_items``.

    Serial (1) when parallelism is off or the batch is too small to
    amortize pool setup; otherwise at most one worker per item.
    """
    if requested <= 1 or n_items < min_items:
        return 1
    return min(int(requested), n_items)


def map_chunks(n_items: int, workers: int,
               fn: Callable[[int, int], _T],
               min_items: int = PARALLEL_MIN_ITEMS) -> list[_T]:
    """Run ``fn(start, stop)`` over contiguous chunks of ``range(n_items)``,
    fanned out to a thread pool; results return in chunk order.

    The one shared fan-out for owner-aligned kernels: workers resolve
    through :func:`kernel_workers` (serial inline — no pool — when
    parallelism is off or the batch is below ``min_items``), and chunk
    boundaries come from :func:`chunk_bounds`, so every caller gets the
    same gating and partitioning behaviour.
    """
    effective = kernel_workers(workers, n_items, min_items)
    bounds = chunk_bounds(n_items, effective)
    if effective <= 1:
        return [fn(start, stop) for start, stop in bounds]
    with ThreadPoolExecutor(max_workers=effective) as pool:
        return list(pool.map(lambda bound: fn(*bound), bounds))


class WorkerBudget:
    """One machine-wide worker budget shared by the serving layer's
    scheduler and the intra-query kernels.

    The problem it solves: the scheduler runs up to W queries at once,
    and each query's kernels (parallel semantic join, batch subword
    path) would *also* spin up W threads — oversubscribing the machine
    W-fold exactly when it is busiest.  The budget hands each admitted
    query a kernel-worker share of ``max(1, total // active)``: a lone
    query gets the whole machine, sixteen concurrent queries get one
    worker each, and the sum of kernel workers never exceeds ~2x total
    (shares are not retroactively shrunk when later queries arrive —
    a deliberate simplification; shares are short-lived).

    ``acquire()`` never blocks — admission control (queue bounds) lives
    in the scheduler; the budget only divides the machine among queries
    the scheduler already admitted.
    """

    def __init__(self, total: int | None = None) -> None:
        #: Machine-wide worker count (resolved like session parallelism).
        self.total = resolve_workers(total)
        self._active = 0
        self._lock = threading.Lock()

    @property
    def active(self) -> int:
        """Queries currently holding a share."""
        with self._lock:
            return self._active

    def acquire(self) -> int:
        """Register one running query; returns its kernel-worker share."""
        with self._lock:
            self._active += 1
            return max(1, self.total // self._active)

    def release(self) -> None:
        """Return a share acquired with :meth:`acquire`."""
        with self._lock:
            if self._active <= 0:
                raise RuntimeError("WorkerBudget.release() without acquire()")
            self._active -= 1

    def __enter__(self) -> int:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def chunk_bounds(n_items: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``chunks`` contiguous, near-equal
    ``(start, stop)`` slices (no empty slices)."""
    chunks = max(1, min(chunks, n_items)) if n_items else 0
    bounds: list[tuple[int, int]] = []
    base, extra = divmod(n_items, chunks) if chunks else (0, 0)
    start = 0
    for index in range(chunks):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds
