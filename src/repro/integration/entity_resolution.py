"""Embedding-based entity resolution and deduplication.

Matching uses the blocked semantic-join kernel; deduplication closes the
match relation transitively with union-find (two records describing the
same entity through a chain of synonyms end up together even when their
direct similarity dips below the threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.semantic.cache import EmbeddingCache
from repro.semantic.join import join_blocked
from repro.storage.table import Table


@dataclass(frozen=True)
class MatchedPair:
    left_row: int
    right_row: int
    score: float


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self.parent[max(root_a, root_b)] = min(root_a, root_b)


class EntityResolver:
    """Matches and deduplicates records by a string key's context."""

    def __init__(self, cache: EmbeddingCache, threshold: float = 0.9):
        self.cache = cache
        self.threshold = threshold

    def match(self, left: Table, right: Table, left_column: str,
              right_column: str) -> list[MatchedPair]:
        """All cross-table row pairs whose keys are context-similar."""
        left_values = [v if v is not None else "" for v in
                       left.column(left_column)]
        right_values = [v if v is not None else "" for v in
                        right.column(right_column)]
        if not left_values or not right_values:
            return []
        left_matrix = self.cache.matrix(left_values)
        right_matrix = self.cache.matrix(right_values)
        li, ri, scores = join_blocked(left_matrix, right_matrix,
                                      self.threshold)
        return [MatchedPair(int(a), int(b), float(s))
                for a, b, s in zip(li, ri, scores)]

    def deduplicate(self, table: Table, column: str) -> np.ndarray:
        """Entity id per row: transitive closure of the match relation."""
        values = [v if v is not None else "" for v in table.column(column)]
        if not values:
            return np.empty(0, dtype=np.int64)
        matrix = self.cache.matrix(values)
        li, ri, _ = join_blocked(matrix, matrix, self.threshold)
        union_find = _UnionFind(len(values))
        for a, b in zip(li, ri):
            if int(a) != int(b):
                union_find.union(int(a), int(b))
        roots = [union_find.find(i) for i in range(len(values))]
        # compact ids in first-appearance order
        remap: dict[int, int] = {}
        ids = np.empty(len(values), dtype=np.int64)
        for i, root in enumerate(roots):
            if root not in remap:
                remap[root] = len(remap)
            ids[i] = remap[root]
        return ids
