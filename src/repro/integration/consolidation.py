"""Automated, on-the-fly result consolidation (Figure 3).

Given a column of dirty, context-rich values (synonyms, alternative
spellings, misspellings), produce a canonical mapping — without a domain
expert in the loop.  The semantic path embeds values and threshold-clusters
them; syntactic baselines (edit distance / n-gram Jaccard) are provided
through the same interface so Figure 3's comparison is one function call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import IntegrationError
from repro.semantic.baselines import (
    jaccard_similarity,
    normalized_edit_similarity,
)
from repro.semantic.cache import EmbeddingCache
from repro.semantic.groupby import cluster_strings
from repro.storage.table import Table


@dataclass
class ConsolidationReport:
    """Outcome of consolidating one value set."""

    mapping: dict[str, str]            # raw value -> canonical representative
    clusters: dict[str, list[str]] = field(default_factory=dict)
    method: str = "semantic"

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def apply_to(self, values) -> list[str]:
        return [self.mapping.get(v, v) for v in values]


class ResultConsolidator:
    """Consolidates values by semantic or syntactic similarity."""

    def __init__(self, cache: EmbeddingCache | None = None,
                 threshold: float = 0.9, method: str = "semantic"):
        if method in ("semantic",) and cache is None:
            raise IntegrationError("semantic consolidation needs a cache")
        if method not in ("semantic", "edit", "jaccard", "exact"):
            raise IntegrationError(f"unknown consolidation method {method!r}")
        self.cache = cache
        self.threshold = threshold
        self.method = method

    def consolidate(self, values) -> ConsolidationReport:
        """Cluster ``values`` and map each to its representative."""
        values = [v for v in values if v is not None]
        unique = sorted(set(values))
        if not unique:
            return ConsolidationReport({}, {}, self.method)
        if self.method == "semantic":
            labels, representatives = self._semantic(values)
        elif self.method == "exact":
            labels = {v: i for i, v in enumerate(unique)}
            representatives = list(unique)
        else:
            labels, representatives = self._syntactic(unique)
        mapping: dict[str, str] = {}
        clusters: dict[str, list[str]] = {}
        for value in unique:
            representative = representatives[labels[value]]
            mapping[value] = representative
            clusters.setdefault(representative, []).append(value)
        return ConsolidationReport(mapping, clusters, self.method)

    def consolidate_column(self, table: Table, column: str) -> Table:
        """Return ``table`` with ``column`` rewritten to canonical values."""
        report = self.consolidate(table.column(column))
        canonical = np.asarray(
            [report.mapping.get(v, v) for v in table.column(column)],
            dtype=object)
        columns = dict(table.columns)
        resolved = table.schema.names[table.schema.index_of(column)]
        columns[resolved] = canonical
        return Table(table.schema, columns)

    # ------------------------------------------------------------------
    def _semantic(self, values) -> tuple[dict[str, int], list[str]]:
        assert self.cache is not None
        clustering = cluster_strings(values, self.cache, self.threshold)
        labels: dict[str, int] = {}
        for value, label in zip(values, clustering.labels):
            labels.setdefault(value, int(label))
        return labels, clustering.representatives

    def _syntactic(self, unique: list[str]) -> tuple[dict[str, int],
                                                     list[str]]:
        similarity = (normalized_edit_similarity if self.method == "edit"
                      else jaccard_similarity)
        representatives: list[str] = []
        labels: dict[str, int] = {}
        for value in unique:
            assigned = None
            best = self.threshold
            for cluster_id, representative in enumerate(representatives):
                score = similarity(value, representative)
                if score >= best:
                    best = score
                    assigned = cluster_id
            if assigned is None:
                labels[value] = len(representatives)
                representatives.append(value)
            else:
                labels[value] = assigned
        return labels, representatives


def pairwise_f1(predicted: dict[str, str],
                truth: dict[str, str]) -> tuple[float, float, float]:
    """Pairwise precision/recall/F1 of a consolidation mapping.

    Two values are a predicted pair when mapped to the same representative;
    a true pair when they share a ground-truth group.
    """
    values = sorted(set(predicted) & set(truth))
    predicted_pairs = set()
    true_pairs = set()
    for i, a in enumerate(values):
        for b in values[i + 1:]:
            if predicted[a] == predicted[b]:
                predicted_pairs.add((a, b))
            if truth[a] == truth[b]:
                true_pairs.add((a, b))
    if not predicted_pairs and not true_pairs:
        return 1.0, 1.0, 1.0
    true_positive = len(predicted_pairs & true_pairs)
    precision = (true_positive / len(predicted_pairs)
                 if predicted_pairs else 0.0)
    recall = true_positive / len(true_pairs) if true_pairs else 0.0
    if precision + recall == 0.0:
        return 0.0, 0.0, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1
