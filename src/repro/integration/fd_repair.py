"""Query-driven repair of functional dependency violations (ref [12]).

``FunctionalDependency(["product_id"], "category")`` says rows agreeing on
``product_id`` must agree on ``category``.  Violating groups are repaired
online — optionally only for the rows a query actually touches — by
majority vote, with an embedding-based twist: when the conflicting values
are context-equivalent (synonyms), the repair consolidates them instead of
treating the group as genuinely inconsistent, which is exactly the
paper's "context-rich online data cleaning task".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import IntegrationError
from repro.semantic.cache import EmbeddingCache
from repro.storage.table import Table


@dataclass(frozen=True)
class FunctionalDependency:
    """lhs columns functionally determine the rhs column."""

    lhs: tuple[str, ...]
    rhs: str

    def __str__(self) -> str:
        return f"{{{', '.join(self.lhs)}}} -> {self.rhs}"


@dataclass
class RepairReport:
    """What the repair pass did."""

    fd: FunctionalDependency
    groups_checked: int = 0
    violating_groups: int = 0
    semantic_consolidations: int = 0
    majority_repairs: int = 0
    rows_changed: int = 0
    changes: list[tuple[object, str, str]] = field(default_factory=list)


def repair_fd_violations(
    table: Table,
    fd: FunctionalDependency,
    cache: EmbeddingCache | None = None,
    semantic_threshold: float = 0.9,
    scope_mask: np.ndarray | None = None,
) -> tuple[Table, RepairReport]:
    """Repair ``fd`` violations in ``table``; returns (table, report).

    ``scope_mask`` restricts repair to the rows a query touches (the
    query-driven part); other rows pass through unmodified.  Within a
    violating group the repair prefers semantic consolidation (conflicting
    values that are synonyms collapse to the most frequent form) and falls
    back to majority vote.
    """
    if not fd.lhs:
        raise IntegrationError("functional dependency needs lhs columns")
    n = table.num_rows
    in_scope = (np.ones(n, dtype=bool) if scope_mask is None
                else np.asarray(scope_mask, dtype=bool))
    if in_scope.shape[0] != n:
        raise IntegrationError("scope mask length mismatch")

    lhs_arrays = [table.column(c) for c in fd.lhs]
    rhs_name = table.schema.names[table.schema.index_of(fd.rhs)]
    rhs = np.array(table.column(rhs_name), dtype=object, copy=True)

    groups: dict[tuple, list[int]] = {}
    for row in range(n):
        if not in_scope[row]:
            continue
        key = tuple(arr[row] for arr in lhs_arrays)
        groups.setdefault(key, []).append(row)

    report = RepairReport(fd=fd)
    for key, rows in groups.items():
        report.groups_checked += 1
        values = [rhs[r] for r in rows if rhs[r] is not None]
        distinct = sorted(set(values))
        if len(distinct) <= 1:
            continue
        report.violating_groups += 1
        replacement = _choose_repair(distinct, values, cache,
                                     semantic_threshold, report)
        for row in rows:
            if rhs[row] is not None and rhs[row] != replacement:
                report.changes.append((key, str(rhs[row]), replacement))
                rhs[row] = replacement
                report.rows_changed += 1

    columns = dict(table.columns)
    columns[rhs_name] = rhs
    return Table(table.schema, columns), report


def _choose_repair(distinct: list[str], values: list[str],
                   cache: EmbeddingCache | None, threshold: float,
                   report: RepairReport) -> str:
    frequency = Counter(values)
    if cache is not None and _all_context_equivalent(distinct, cache,
                                                     threshold):
        report.semantic_consolidations += 1
    else:
        report.majority_repairs += 1
    # Most frequent value wins; ties break lexicographically (determinism).
    best = sorted(frequency.items(), key=lambda kv: (-kv[1], kv[0]))
    return best[0][0]


def _all_context_equivalent(distinct: list[str], cache: EmbeddingCache,
                            threshold: float) -> bool:
    matrix = cache.matrix(distinct)
    similarity = matrix @ matrix.T
    off_diagonal = similarity[~np.eye(len(distinct), dtype=bool)]
    if off_diagonal.size == 0:
        return True
    return bool(off_diagonal.min() >= threshold)
