"""Online data integration (paper §IV, Figure 3).

"The data cannot be fully cleaned and unified ... ahead of time" — so
cleaning happens *at query time*:

- :class:`~repro.integration.consolidation.ResultConsolidator` —
  automated, on-the-fly result consolidation: cluster context-equivalent
  values and rewrite them to a canonical representative (Figure 3's
  "embeddings + distance matching = auto-consolidation").
- :class:`~repro.integration.entity_resolution.EntityResolver` —
  embedding-based record matching and union-find deduplication.
- :mod:`~repro.integration.fd_repair` — query-driven repair of functional
  dependency violations (ref [12]) with semantic conflict resolution.
"""

from repro.integration.consolidation import (
    ConsolidationReport,
    ResultConsolidator,
    pairwise_f1,
)
from repro.integration.entity_resolution import EntityResolver, MatchedPair
from repro.integration.fd_repair import (
    FunctionalDependency,
    RepairReport,
    repair_fd_violations,
)

__all__ = [
    "ConsolidationReport",
    "ResultConsolidator",
    "pairwise_f1",
    "EntityResolver",
    "MatchedPair",
    "FunctionalDependency",
    "RepairReport",
    "repair_fd_violations",
]
