"""Exact cosine search by full matrix scan.

The reference implementation every approximate index is measured against
(recall), and the physical access path of choice for small candidate sets.
"""

from __future__ import annotations

import numpy as np

from repro.vector.index import SearchResult, VectorIndex
from repro.vector.topk import top_k_indices


class BruteForceIndex(VectorIndex):
    """Exact top-k / range search via one GEMV per query."""

    def _build(self, vectors: np.ndarray) -> None:
        pass  # nothing beyond the normalized matrix kept by the base class

    @property
    def supports_incremental(self) -> bool:
        return True

    def _extended(self, new_vectors: np.ndarray) -> "BruteForceIndex":
        # No structure beyond the matrix, so extension is one vstack —
        # and, unlike the approximate indexes, the result is *exactly*
        # what a from-scratch build over the union would produce.
        clone = BruteForceIndex()
        clone._vectors = np.vstack([self.vectors, new_vectors])
        return clone

    def search(self, query: np.ndarray, k: int) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        scores = self.vectors @ query
        ids = top_k_indices(scores, k)
        return SearchResult(ids, scores[ids])

    def range_search(self, query: np.ndarray, threshold: float,
                     oversample: int = 4) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        scores = self.vectors @ query
        ids = np.nonzero(scores >= threshold)[0].astype(np.int64)
        order = np.argsort(-scores[ids], kind="stable")
        ids = ids[order]
        return SearchResult(ids, scores[ids])
