"""Distance / similarity kernels over embedding matrices.

All batch kernels take ``(n, d)`` float arrays.  ``normalize_rows`` is the
single place rows are unit-normalized, so cosine similarity elsewhere is a
plain dot product — this is also what makes the "tight code" and "SIMD"
rungs of the Figure-4 ladder work (one BLAS GEMM instead of per-pair
Python).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


def normalize_rows(matrix: np.ndarray, copy: bool = True) -> np.ndarray:
    """L2-normalize each row; zero rows are left at zero."""
    matrix = np.array(matrix, dtype=np.float32, copy=copy)
    if matrix.ndim != 2:
        raise IndexError_("normalize_rows expects a 2-D matrix")
    # norms in float64: float32 loses precision on denormal-scale rows
    norms = np.linalg.norm(matrix.astype(np.float64), axis=1, keepdims=True)
    np.divide(matrix, norms, out=matrix, where=norms > 0.0)
    return matrix


def cosine_similarity(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Cosine similarity of two single vectors."""
    norm_a = float(np.linalg.norm(vector_a))
    norm_b = float(np.linalg.norm(vector_b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(vector_a, vector_b) / (norm_a * norm_b))


def cosine_matrix(left: np.ndarray, right: np.ndarray,
                  assume_normalized: bool = False) -> np.ndarray:
    """Full ``(n, m)`` cosine matrix between row sets."""
    if not assume_normalized:
        left = normalize_rows(left)
        right = normalize_rows(right)
    return left @ right.T


def cosine_pairs(left: np.ndarray, right: np.ndarray,
                 assume_normalized: bool = False) -> np.ndarray:
    """Row-wise cosine between aligned rows of two ``(n, d)`` matrices."""
    if left.shape != right.shape:
        raise IndexError_("cosine_pairs expects equal-shape matrices")
    if not assume_normalized:
        left = normalize_rows(left)
        right = normalize_rows(right)
    return np.einsum("nd,nd->n", left, right)


def l2_distance(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Full ``(n, m)`` Euclidean distance matrix (numerically clamped).

    Computed in float64: the ``a^2 + b^2 - 2ab`` expansion loses too much
    precision in float32 for near-identical rows.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    sq = (np.sum(left**2, axis=1)[:, None]
          + np.sum(right**2, axis=1)[None, :]
          - 2.0 * (left @ right.T))
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)
