"""Common interface for vector indexes.

The semantic-join physical operators and the optimizer's access-path
selection only depend on this interface, so index implementations are
interchangeable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.vector.metrics import normalize_rows


@dataclass
class SearchResult:
    """Result of a top-k search: parallel id/score arrays, best first."""

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.shape[0])


class VectorIndex(ABC):
    """A build-once, query-many cosine-similarity index."""

    def __init__(self):
        self._vectors: np.ndarray | None = None

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def vectors(self) -> np.ndarray:
        """The (normalized) indexed vectors."""
        self._require_built()
        assert self._vectors is not None
        return self._vectors

    def build(self, vectors: np.ndarray) -> "VectorIndex":
        """Index ``(n, d)`` vectors (rows are copied and normalized)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise IndexError_("build expects a non-empty (n, d) matrix")
        self._vectors = normalize_rows(vectors)
        self._build(self._vectors)
        return self

    @abstractmethod
    def _build(self, vectors: np.ndarray) -> None:
        """Implementation hook: vectors are already normalized."""

    @property
    def supports_incremental(self) -> bool:
        """Whether :meth:`extended` avoids a full rebuild.

        ``False`` by default: indexes whose internal structure is a
        global function of the whole vector set (IVF centroids, LSH
        bucket statistics) rebuild from scratch on growth.
        """
        return False

    def extended(self, new_vectors: np.ndarray) -> "VectorIndex":
        """A **new** index over the old rows followed by ``new_vectors``.

        The ingest path: appended arena rows extend an existing index
        without re-inserting the old rows.  The returned index is a
        fresh object sharing no mutable state with ``self`` (the old
        index stays queryable under its old cache key).  Row ids of the
        old index are preserved; new rows get ids ``size .. size+n-1``.

        For approximate indexes the extended graph is *not* byte-equal
        to a from-scratch build over the union — both are valid
        approximate indexes, and delta result maintenance only trusts
        exact methods anyway (``docs/ingest.md``).  Raises
        :class:`IndexError_` unless :attr:`supports_incremental`.
        """
        self._require_built()
        new_vectors = np.asarray(new_vectors, dtype=np.float32)
        if new_vectors.ndim != 2 or new_vectors.shape[0] == 0:
            raise IndexError_("extended expects a non-empty (n, d) matrix")
        if new_vectors.shape[1] != self.vectors.shape[1]:
            raise IndexError_(
                f"extension dim {new_vectors.shape[1]} != index dim "
                f"{self.vectors.shape[1]}")
        return self._extended(normalize_rows(new_vectors))

    def _extended(self, new_vectors: np.ndarray) -> "VectorIndex":
        """Implementation hook: ``new_vectors`` already normalized."""
        raise IndexError_(
            f"{type(self).__name__} does not support incremental "
            f"extension; rebuild instead")

    @abstractmethod
    def search(self, query: np.ndarray, k: int) -> SearchResult:
        """Top-``k`` most similar indexed vectors for one query vector."""

    def range_search(self, query: np.ndarray, threshold: float,
                     oversample: int = 4) -> SearchResult:
        """All indexed vectors with cosine >= ``threshold``.

        Default implementation iterates top-k with growing ``k`` until the
        score frontier drops below the threshold; exact indexes override
        with a direct scan.
        """
        self._require_built()
        k = min(max(oversample, 1), self.size)
        while True:
            result = self.search(query, k)
            below = result.scores < threshold
            if below.any() or k >= self.size:
                keep = result.scores >= threshold
                return SearchResult(result.ids[keep], result.scores[keep])
            k = min(k * 2, self.size)

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexError_(f"{type(self).__name__} queried before build()")

    @staticmethod
    def _normalize_query(query: np.ndarray, dim: int) -> np.ndarray:
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != dim:
            raise IndexError_(
                f"query dim {query.shape[0]} != index dim {dim}"
            )
        norm = float(np.linalg.norm(query))
        if norm > 0.0:
            query = query / norm
        return query
