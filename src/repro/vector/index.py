"""Common interface for vector indexes.

The semantic-join physical operators and the optimizer's access-path
selection only depend on this interface, so index implementations are
interchangeable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.vector.metrics import normalize_rows


@dataclass
class SearchResult:
    """Result of a top-k search: parallel id/score arrays, best first."""

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.shape[0])


class VectorIndex(ABC):
    """A build-once, query-many cosine-similarity index."""

    def __init__(self):
        self._vectors: np.ndarray | None = None

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def vectors(self) -> np.ndarray:
        """The (normalized) indexed vectors."""
        self._require_built()
        assert self._vectors is not None
        return self._vectors

    def build(self, vectors: np.ndarray) -> "VectorIndex":
        """Index ``(n, d)`` vectors (rows are copied and normalized)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise IndexError_("build expects a non-empty (n, d) matrix")
        self._vectors = normalize_rows(vectors)
        self._build(self._vectors)
        return self

    @abstractmethod
    def _build(self, vectors: np.ndarray) -> None:
        """Implementation hook: vectors are already normalized."""

    @abstractmethod
    def search(self, query: np.ndarray, k: int) -> SearchResult:
        """Top-``k`` most similar indexed vectors for one query vector."""

    def range_search(self, query: np.ndarray, threshold: float,
                     oversample: int = 4) -> SearchResult:
        """All indexed vectors with cosine >= ``threshold``.

        Default implementation iterates top-k with growing ``k`` until the
        score frontier drops below the threshold; exact indexes override
        with a direct scan.
        """
        self._require_built()
        k = min(max(oversample, 1), self.size)
        while True:
            result = self.search(query, k)
            below = result.scores < threshold
            if below.any() or k >= self.size:
                keep = result.scores >= threshold
                return SearchResult(result.ids[keep], result.scores[keep])
            k = min(k * 2, self.size)

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexError_(f"{type(self).__name__} queried before build()")

    @staticmethod
    def _normalize_query(query: np.ndarray, dim: int) -> np.ndarray:
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != dim:
            raise IndexError_(
                f"query dim {query.shape[0]} != index dim {dim}"
            )
        norm = float(np.linalg.norm(query))
        if norm > 0.0:
            query = query / norm
        return query
