"""A lightweight HNSW (hierarchical navigable small world) graph index.

Implements the standard construction of Malkov & Yashunin: each element is
inserted at a geometrically-sampled maximum layer; greedy search descends
from the top layer, then a beam search (``ef``) runs on the base layer.
Kept deliberately compact — the engine needs a realistic graph-index access
path with build/probe cost characteristics, not a FAISS replacement.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.utils.rng import derive_seed, make_rng
from repro.vector.index import SearchResult, VectorIndex


class HNSWIndex(VectorIndex):
    """HNSW over cosine similarity (vectors normalized by the base class)."""

    def __init__(self, m: int = 8, ef_construction: int = 64,
                 ef_search: int = 32, seed: int = 0):
        super().__init__()
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self._layers: list[dict[int, list[int]]] = []
        self._entry_point: int = -1
        self._node_level: np.ndarray | None = None

    def _build(self, vectors: np.ndarray) -> None:
        rng = make_rng(derive_seed(self.seed, "hnsw"))
        n = vectors.shape[0]
        level_mult = 1.0 / np.log(max(self.m, 2))
        levels = np.floor(-np.log(rng.uniform(size=n) + 1e-12)
                          * level_mult).astype(np.int64)
        max_level = int(levels.max(initial=0))
        self._node_level = levels
        self._layers = [dict() for _ in range(max_level + 1)]
        self._entry_point = -1

        for node in range(n):
            self._insert(node, int(levels[node]), vectors)

    @property
    def supports_incremental(self) -> bool:
        return True

    def _extended(self, new_vectors: np.ndarray) -> "HNSWIndex":
        """Insert new rows into a structural copy of the graph.

        The standard HNSW property: insertion is the same operation at
        build time and afterwards, so growth costs O(new · log n)
        instead of a full rebuild.  New node levels come from a stream
        derived from ``(seed, "hnsw-extend", old_size)`` — disjoint from
        the build-time stream and from any other extension point, so
        repeated extensions stay deterministic without replaying levels
        already assigned.
        """
        clone = HNSWIndex(m=self.m, ef_construction=self.ef_construction,
                          ef_search=self.ef_search, seed=self.seed)
        assert self._node_level is not None
        old_n = self.size
        vectors = np.vstack([self.vectors, new_vectors])
        rng = make_rng(derive_seed(self.seed, "hnsw-extend", old_n))
        level_mult = 1.0 / np.log(max(self.m, 2))
        new_levels = np.floor(
            -np.log(rng.uniform(size=new_vectors.shape[0]) + 1e-12)
            * level_mult).astype(np.int64)
        levels = np.concatenate([self._node_level, new_levels])
        clone._vectors = vectors
        clone._node_level = levels
        clone._layers = [{node: list(links) for node, links in layer.items()}
                         for layer in self._layers]
        while len(clone._layers) < int(levels.max(initial=0)) + 1:
            clone._layers.append({})
        clone._entry_point = self._entry_point
        for offset in range(new_vectors.shape[0]):
            clone._insert(old_n + offset, int(new_levels[offset]), vectors)
        return clone

    # ------------------------------------------------------------------
    def _insert(self, node: int, level: int, vectors: np.ndarray) -> None:
        for layer in range(level + 1):
            self._layers[layer].setdefault(node, [])
        if self._entry_point < 0:
            self._entry_point = node
            return
        query = vectors[node]
        entry = self._entry_point
        assert self._node_level is not None
        top = int(self._node_level[self._entry_point])
        # Greedy descent through layers above the node's level.
        for layer in range(top, level, -1):
            entry = self._greedy_step(query, entry, layer, vectors)
        # Beam search + connect on layers <= level.
        for layer in range(min(level, top), -1, -1):
            neighbours = self._search_layer(query, [entry], layer,
                                            self.ef_construction, vectors)
            selected = [idx for _, idx in
                        heapq.nlargest(self.m, neighbours)]
            self._connect(node, selected, layer, vectors)
            if neighbours:
                entry = max(neighbours)[1]
        if level > top:
            self._entry_point = node

    def _connect(self, node: int, neighbours: list[int], layer: int,
                 vectors: np.ndarray) -> None:
        adjacency = self._layers[layer]
        adjacency[node] = list(neighbours)
        limit = self.m * 2 if layer == 0 else self.m
        for neighbour in neighbours:
            links = adjacency.setdefault(neighbour, [])
            links.append(node)
            if len(links) > limit:  # prune to the closest ``limit`` links
                scores = vectors[links] @ vectors[neighbour]
                order = np.argsort(-scores)[:limit]
                adjacency[neighbour] = [links[int(i)] for i in order]

    def _greedy_step(self, query: np.ndarray, entry: int, layer: int,
                     vectors: np.ndarray) -> int:
        current = entry
        current_score = float(vectors[current] @ query)
        improved = True
        while improved:
            improved = False
            for neighbour in self._layers[layer].get(current, ()):
                score = float(vectors[neighbour] @ query)
                if score > current_score:
                    current, current_score = neighbour, score
                    improved = True
        return current

    def _search_layer(self, query: np.ndarray, entries: list[int], layer: int,
                      ef: int, vectors: np.ndarray) -> list[tuple[float, int]]:
        """Beam search; returns (score, id) pairs (unordered)."""
        visited = set(entries)
        candidates: list[tuple[float, int]] = []   # max-heap via negation
        best: list[tuple[float, int]] = []         # min-heap of size <= ef
        for entry in entries:
            score = float(vectors[entry] @ query)
            heapq.heappush(candidates, (-score, entry))
            heapq.heappush(best, (score, entry))
        while candidates:
            neg_score, current = heapq.heappop(candidates)
            if best and -neg_score < best[0][0] and len(best) >= ef:
                break
            for neighbour in self._layers[layer].get(current, ()):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                score = float(vectors[neighbour] @ query)
                if len(best) < ef or score > best[0][0]:
                    heapq.heappush(candidates, (-score, neighbour))
                    heapq.heappush(best, (score, neighbour))
                    if len(best) > ef:
                        heapq.heappop(best)
        return best

    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        if self._entry_point < 0:
            return SearchResult(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.float32))
        assert self._node_level is not None
        entry = self._entry_point
        for layer in range(int(self._node_level[self._entry_point]), 0, -1):
            entry = self._greedy_step(query, entry, layer, self.vectors)
        ef = max(self.ef_search, k)
        found = self._search_layer(query, [entry], 0, ef, self.vectors)
        found.sort(reverse=True)
        top = found[:k]
        ids = np.asarray([idx for _, idx in top], dtype=np.int64)
        scores = np.asarray([score for score, _ in top], dtype=np.float32)
        return SearchResult(ids, scores)
