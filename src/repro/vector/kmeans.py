"""Lloyd's k-means with k-means++ initialization (pure NumPy).

Used by the IVF-Flat coarse quantizer and by SemanticGroupBy's
fixed-k clustering mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import IndexError_
from repro.utils.rng import make_rng


@dataclass
class KMeans:
    """k-means clustering.

    Attributes after :meth:`fit`: ``centroids`` (k, d), ``labels`` (n,),
    ``inertia`` (sum of squared distances to assigned centroid).
    """

    n_clusters: int
    max_iter: int = 25
    tol: float = 1e-4
    seed: int = 0
    centroids: np.ndarray | None = field(default=None, repr=False)
    labels: np.ndarray | None = field(default=None, repr=False)
    inertia: float = float("inf")

    def fit(self, points: np.ndarray) -> "KMeans":
        points = np.asarray(points, dtype=np.float32)
        if points.ndim != 2 or points.shape[0] == 0:
            raise IndexError_("KMeans.fit expects a non-empty (n, d) matrix")
        k = min(self.n_clusters, points.shape[0])
        rng = make_rng(self.seed)
        centroids = self._init_plus_plus(points, k, rng)
        labels = np.zeros(points.shape[0], dtype=np.int64)
        previous_inertia = float("inf")
        for _ in range(self.max_iter):
            distances = _squared_distances(points, centroids)
            labels = np.argmin(distances, axis=1)
            inertia = float(distances[np.arange(points.shape[0]), labels].sum())
            for cluster in range(k):
                members = points[labels == cluster]
                if members.shape[0] > 0:
                    centroids[cluster] = members.mean(axis=0)
                else:  # re-seed empty cluster at the farthest point
                    farthest = int(np.argmax(distances.min(axis=1)))
                    centroids[cluster] = points[farthest]
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                previous_inertia = inertia
                break
            previous_inertia = inertia
        # Final assignment against the *final* centroids so that labels,
        # inertia, and predict() agree.
        distances = _squared_distances(points, centroids)
        self.labels = np.argmin(distances, axis=1)
        self.inertia = float(
            distances[np.arange(points.shape[0]), self.labels].sum())
        self.centroids = centroids
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise IndexError_("KMeans.predict called before fit")
        points = np.asarray(points, dtype=np.float32)
        return np.argmin(_squared_distances(points, self.centroids), axis=1)

    @staticmethod
    def _init_plus_plus(points: np.ndarray, k: int,
                        rng: np.random.Generator) -> np.ndarray:
        n = points.shape[0]
        centroids = np.empty((k, points.shape[1]), dtype=np.float32)
        first = int(rng.integers(n))
        centroids[0] = points[first]
        closest_sq = _squared_distances(points, centroids[:1]).ravel()
        for i in range(1, k):
            total = float(closest_sq.sum())
            if total <= 0.0:
                centroids[i:] = points[int(rng.integers(n))]
                break
            probabilities = closest_sq / total
            choice = int(rng.choice(n, p=probabilities))
            centroids[i] = points[choice]
            new_sq = _squared_distances(points, centroids[i:i + 1]).ravel()
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centroids


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    sq = (np.sum(points**2, axis=1)[:, None]
          + np.sum(centroids**2, axis=1)[None, :]
          - 2.0 * (points @ centroids.T))
    np.maximum(sq, 0.0, out=sq)
    return sq
