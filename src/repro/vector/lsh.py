"""Random-hyperplane LSH index for cosine similarity.

Classic SimHash construction: each of ``n_tables`` hash tables uses
``n_bits`` random hyperplanes; a vector's signature is the sign pattern of
its projections.  Candidates are the union of same-bucket entries over all
tables (optionally expanded by multi-probe on 1-bit flips), re-ranked
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_seed, make_rng
from repro.vector.index import SearchResult, VectorIndex
from repro.vector.topk import top_k_indices


class LSHIndex(VectorIndex):
    """SimHash LSH with exact re-ranking of candidates."""

    def __init__(self, n_tables: int = 8, n_bits: int = 12, seed: int = 0,
                 multiprobe_flips: int = 1):
        super().__init__()
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.seed = seed
        self.multiprobe_flips = multiprobe_flips
        self._hyperplanes: np.ndarray | None = None  # (tables, bits, d)
        self._tables: list[dict[int, list[int]]] = []

    def _build(self, vectors: np.ndarray) -> None:
        rng = make_rng(derive_seed(self.seed, "lsh", self.n_tables, self.n_bits))
        dim = vectors.shape[1]
        self._hyperplanes = rng.standard_normal(
            (self.n_tables, self.n_bits, dim)
        ).astype(np.float32)
        self._tables = [dict() for _ in range(self.n_tables)]
        signatures = self._signatures(vectors)  # (n, tables)
        for row in range(vectors.shape[0]):
            for table in range(self.n_tables):
                bucket = int(signatures[row, table])
                self._tables[table].setdefault(bucket, []).append(row)

    def search(self, query: np.ndarray, k: int) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        candidates = self._candidates(query)
        if candidates.size == 0:
            return SearchResult(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.float32))
        scores = self.vectors[candidates] @ query
        order = top_k_indices(scores, k)
        return SearchResult(candidates[order], scores[order])

    def range_search(self, query: np.ndarray, threshold: float,
                     oversample: int = 4) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        candidates = self._candidates(query)
        if candidates.size == 0:
            return SearchResult(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.float32))
        scores = self.vectors[candidates] @ query
        keep = scores >= threshold
        ids = candidates[keep]
        kept_scores = scores[keep]
        order = np.argsort(-kept_scores, kind="stable")
        return SearchResult(ids[order], kept_scores[order])

    # ------------------------------------------------------------------
    def _signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket id per (vector, table): pack sign bits into an int."""
        assert self._hyperplanes is not None
        weights = (1 << np.arange(self.n_bits)).astype(np.int64)
        output = np.empty((vectors.shape[0], self.n_tables), dtype=np.int64)
        for table in range(self.n_tables):
            projections = vectors @ self._hyperplanes[table].T  # (n, bits)
            bits = (projections > 0.0).astype(np.int64)
            output[:, table] = bits @ weights
        return output

    def _candidates(self, query: np.ndarray) -> np.ndarray:
        signature = self._signatures(query[None, :])[0]
        found: set[int] = set()
        for table in range(self.n_tables):
            bucket = int(signature[table])
            found.update(self._tables[table].get(bucket, ()))
            for flip in range(self.n_bits if self.multiprobe_flips else 0):
                if self.multiprobe_flips < 1:
                    break
                neighbour = bucket ^ (1 << flip)
                found.update(self._tables[table].get(neighbour, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))
