"""Low-precision (int8) embedding quantization (paper §VI).

"Optimization opportunities such as inference using hardware-enabled
half-precision (or lower) floating point formats need to be considered":
this module provides symmetric per-row int8 quantization of embedding
matrices and a quantized similarity kernel.  It cuts the matrix memory
footprint 4x (which the transfer planner exploits) at a small, measured
similarity error — the trade-off the ablation benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.vector.metrics import normalize_rows


@dataclass
class QuantizedMatrix:
    """Symmetric per-row int8 quantization of a unit-row float matrix."""

    codes: np.ndarray   # (n, d) int8
    scales: np.ndarray  # (n,) float32 — row value = code * scale

    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes + self.scales.nbytes)

    def dequantize(self) -> np.ndarray:
        return self.codes.astype(np.float32) * self.scales[:, None]


def quantize_rows(matrix: np.ndarray,
                  assume_normalized: bool = False) -> QuantizedMatrix:
    """Quantize a (n, d) float matrix to int8 with per-row scales."""
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.ndim != 2:
        raise IndexError_("quantize_rows expects a (n, d) matrix")
    if not assume_normalized:
        matrix = normalize_rows(matrix)
    max_abs = np.abs(matrix).max(axis=1)
    scales = np.where(max_abs > 0, max_abs / 127.0, 1.0).astype(np.float32)
    codes = np.clip(np.rint(matrix / scales[:, None]), -127, 127)
    return QuantizedMatrix(codes.astype(np.int8), scales)


def quantized_similarity(left: QuantizedMatrix,
                         right: QuantizedMatrix) -> np.ndarray:
    """Approximate cosine matrix between two quantized unit-row sets.

    The integer dot products accumulate in int32 (no overflow:
    127*127*dim < 2^31 for dim < 133,000), then rescale to float.
    """
    integer = left.codes.astype(np.int32) @ right.codes.astype(np.int32).T
    return (integer.astype(np.float32)
            * left.scales[:, None] * right.scales[None, :])


def join_quantized(left: QuantizedMatrix, right: QuantizedMatrix,
                   threshold: float,
                   guard_band: float = 0.02
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Threshold join over quantized matrices.

    ``guard_band`` lowers the threshold for the quantized pass so borderline
    pairs are not lost to quantization error; callers re-rank the survivors
    exactly if exactness matters.
    """
    similarity = quantized_similarity(left, right)
    rows, cols = np.nonzero(similarity >= threshold - guard_band)
    return (rows.astype(np.int64), cols.astype(np.int64),
            similarity[rows, cols])
