"""IVF-Flat index: k-means coarse quantizer + inverted lists.

The standard FAISS-style recipe (paper ref [20]): partition vectors into
``n_lists`` Voronoi cells; a query scans only the ``n_probes`` closest
cells exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_seed
from repro.vector.index import SearchResult, VectorIndex
from repro.vector.kmeans import KMeans
from repro.vector.topk import top_k_indices


class IVFFlatIndex(VectorIndex):
    """Inverted-file index with exact scoring inside probed cells."""

    def __init__(self, n_lists: int = 16, n_probes: int = 3, seed: int = 0):
        super().__init__()
        if n_probes < 1:
            n_probes = 1
        self.n_lists = n_lists
        self.n_probes = n_probes
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []

    def _build(self, vectors: np.ndarray) -> None:
        k = min(self.n_lists, vectors.shape[0])
        kmeans = KMeans(n_clusters=k, seed=derive_seed(self.seed, "ivf"))
        kmeans.fit(vectors)
        assert kmeans.centroids is not None and kmeans.labels is not None
        self._centroids = kmeans.centroids
        self._lists = [
            np.nonzero(kmeans.labels == cluster)[0].astype(np.int64)
            for cluster in range(k)
        ]

    def search(self, query: np.ndarray, k: int) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        candidates = self._probe(query)
        if candidates.size == 0:
            return SearchResult(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.float32))
        scores = self.vectors[candidates] @ query
        order = top_k_indices(scores, k)
        return SearchResult(candidates[order], scores[order])

    def range_search(self, query: np.ndarray, threshold: float,
                     oversample: int = 4) -> SearchResult:
        self._require_built()
        query = self._normalize_query(query, self.vectors.shape[1])
        candidates = self._probe(query)
        if candidates.size == 0:
            return SearchResult(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.float32))
        scores = self.vectors[candidates] @ query
        keep = scores >= threshold
        ids = candidates[keep]
        kept = scores[keep]
        order = np.argsort(-kept, kind="stable")
        return SearchResult(ids[order], kept[order])

    def _probe(self, query: np.ndarray) -> np.ndarray:
        assert self._centroids is not None
        affinities = self._centroids @ query
        probes = top_k_indices(affinities, min(self.n_probes,
                                               len(self._lists)))
        parts = [self._lists[int(p)] for p in probes]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)
