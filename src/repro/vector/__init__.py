"""Vector processing substrate (paper §V, refs [20], [32]).

Distance metrics, exact (brute-force) search, and three approximate
nearest-neighbour indexes — random-hyperplane LSH, IVF-Flat, and a
lightweight HNSW graph.  The optimizer's cost model chooses between
brute-force and index-based access for semantic operators, exactly the
"index-based access for similarity search should be accounted for in
cost-based optimization" point of §IV.
"""

from repro.vector.metrics import (
    cosine_matrix,
    cosine_pairs,
    cosine_similarity,
    l2_distance,
    normalize_rows,
)
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.lsh import LSHIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.index import VectorIndex
from repro.vector.kmeans import KMeans
from repro.vector.topk import top_k_indices, threshold_pairs
from repro.vector.quantization import (
    QuantizedMatrix,
    join_quantized,
    quantize_rows,
    quantized_similarity,
)

__all__ = [
    "cosine_matrix",
    "cosine_pairs",
    "cosine_similarity",
    "l2_distance",
    "normalize_rows",
    "BruteForceIndex",
    "LSHIndex",
    "IVFFlatIndex",
    "HNSWIndex",
    "VectorIndex",
    "KMeans",
    "top_k_indices",
    "threshold_pairs",
    "QuantizedMatrix",
    "join_quantized",
    "quantize_rows",
    "quantized_similarity",
]
