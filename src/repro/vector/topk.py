"""Top-k and threshold-pair helpers shared by indexes and join operators."""

from __future__ import annotations

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, sorted best-first.

    Uses ``argpartition`` for O(n + k log k) instead of a full sort.
    """
    k = min(int(k), scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k == scores.shape[0]:
        return np.argsort(-scores, kind="stable").astype(np.int64)
    partition = np.argpartition(-scores, k - 1)[:k]
    return partition[np.argsort(-scores[partition], kind="stable")].astype(np.int64)


def threshold_pairs(
    similarity: np.ndarray, threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``(i, j)`` with ``similarity[i, j] >= threshold``.

    Returns ``(rows, cols, scores)`` — the vectorized core of the blocked
    semantic join.
    """
    rows, cols = np.nonzero(similarity >= threshold)
    return rows, cols, similarity[rows, cols]
