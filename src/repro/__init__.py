"""repro — a context-rich analytical engine.

Reproduction of *Analytical Engines With Context-Rich Processing: Towards
Efficient Next-Generation Analytics* (Sanca & Ailamaki, ICDE 2023).

The top-level convenience import is :class:`repro.core.ContextRichEngine`;
subsystems live in dedicated subpackages (see DESIGN.md for the map).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
