"""Exporters over a :class:`MetricsRegistry`.

Three formats, one source of truth:

- :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=}`` rows,
  ``_sum`` / ``_count`` for histograms);
- :func:`json_snapshot` — a flat ``{name{labels}: value}`` dict, the
  machine-readable twin of the Prometheus page;
- the NDJSON trace log, written by :class:`repro.obs.trace.Tracer`.

:func:`parse_prometheus` is the validating reader used by the tests
and the CI observability smoke step: it re-parses the exposition text
and returns the samples, raising :class:`ValueError` on any line that
does not scan.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, flat_name)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(labels: tuple[tuple[str, str], ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = (*labels, *extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for inst in registry.collect():
        if inst.name not in seen_headers:
            seen_headers.add(inst.name)
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, Histogram):
            for le, cumulative in inst.cumulative():
                lines.append(
                    f"{inst.name}_bucket"
                    f"{_label_text(inst.labels, (('le', _fmt(le)),))}"
                    f" {cumulative}")
            lines.append(f"{inst.name}_sum{_label_text(inst.labels)}"
                         f" {_fmt(inst.sum)}")
            lines.append(f"{inst.name}_count{_label_text(inst.labels)}"
                         f" {inst.count}")
        elif isinstance(inst, (Counter, Gauge)):
            lines.append(f"{inst.name}{_label_text(inst.labels)}"
                         f" {_fmt(inst.value)}")
    return "\n".join(lines) + "\n"


def json_snapshot(registry: MetricsRegistry) -> dict[str, float]:
    """Flat ``{name{labels}: value}`` snapshot of every instrument.

    Histograms expand to ``_sum``, ``_count``, and cumulative
    ``_bucket{le=}`` entries so the snapshot carries exactly the same
    samples as :func:`prometheus_text`.
    """
    out: dict[str, float] = {}
    for inst in registry.collect():
        if isinstance(inst, Histogram):
            for le, cumulative in inst.cumulative():
                key = flat_name(f"{inst.name}_bucket",
                                (*inst.labels, ("le", _fmt(le))))
                out[key] = cumulative
            out[flat_name(f"{inst.name}_sum", inst.labels)] = inst.sum
            out[flat_name(f"{inst.name}_count", inst.labels)] = inst.count
        elif isinstance(inst, (Counter, Gauge)):
            out[flat_name(inst.name, inst.labels)] = inst.value
    return out


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    A strict validator, not a general client: every non-comment line
    must be a well-formed sample, every ``# TYPE`` must name a known
    kind, and histogram ``_count`` must equal the ``+Inf`` bucket.
    """
    samples: dict[str, float] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.fullmatch(parts[2]) \
                    or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: bad TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels: list[tuple[str, str]] = []
        label_text = match.group("labels")
        if label_text:
            for part in label_text.split(","):
                pair = _LABEL_RE.match(part)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: bad label {part!r} in {line!r}")
                labels.append((pair.group(1), pair.group(2)))
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {raw!r} in {line!r}") from exc
        key = match.group("name") + _label_text(tuple(labels))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    for name, kind in types.items():
        if kind != "histogram":
            continue
        count_keys = [k for k in samples
                      if k.split("{")[0] == f"{name}_count"]
        for count_key in count_keys:
            label_part = count_key[len(f"{name}_count"):]
            inf_key = f"{name}_bucket" + (
                label_part[:-1] + ',le="+Inf"}' if label_part
                else '{le="+Inf"}')
            if samples.get(inf_key) != samples[count_key]:
                raise ValueError(
                    f"histogram {name}: +Inf bucket != count")
    return samples
