"""CI observability smoke: traced query, exporter parity, schema drift.

Three checks, each cheap enough for every CI run::

    PYTHONPATH=src python -m repro.obs.smoke

1. **Traced statement.**  One semantic join through an
   :class:`~repro.server.EngineServer` must yield a single span tree
   carrying every serving-layer span (parse, plan-cache probe,
   scheduler queue, per-operator execute, cache probes).
2. **Exporter parity.**  The Prometheus page must re-parse (strict
   validator) into exactly the JSON snapshot, and the deterministic
   demo registry must reproduce the golden files byte for byte.
3. **Schema drift.**  The live registry's ``{name: kind}`` map must
   equal ``tests/golden/metrics_schema.json`` — adding, renaming, or
   re-typing a metric is a reviewed change to that golden (and to
   ``analysis/metric_names.py``, which rule MN001 enforces), never an
   accident.

``--write-golden`` regenerates the three golden files after a
deliberate format or vocabulary change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.export import json_snapshot, parse_prometheus, prometheus_text
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.server import EngineServer

#: repo-root-relative golden files (smoke runs from a checkout)
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

PROMETHEUS_GOLDEN = "observability_prometheus.txt"
SNAPSHOT_GOLDEN = "observability_snapshot.json"
SCHEMA_GOLDEN = "metrics_schema.json"

JOIN = ("SELECT p.pid, k.category FROM products AS p "
        "SEMANTIC JOIN kb AS k ON p.ptype ~ k.label THRESHOLD 0.5 "
        "ORDER BY p.pid, k.category")

#: every span one traced executed statement must carry
EXPECTED_SPANS = ("frontend.parse", "plan_cache.probe",
                  "result_cache.probe", "reuse.probe", "scheduler.queue",
                  "execute", "embedding_cache.probe")


def demo_registry() -> MetricsRegistry:
    """Deterministic fixture registry behind the exporter goldens.

    The ``demo_*`` names are a test vocabulary, not engine metrics, so
    they are deliberately absent from ``analysis/metric_names.py``.
    """
    registry = MetricsRegistry()
    requests = registry.counter(  # analysis: ignore[MN001] golden fixture
        "demo_requests_total", help="requests served")
    requests.inc()
    requests.inc(3)
    registry.gauge(  # analysis: ignore[MN001] golden fixture
        "demo_queue_depth", help="jobs waiting").set(3)
    registry.counter(  # analysis: ignore[MN001] golden fixture
        "demo_cache_hits_total", labels={"cache": "plan"},
        help="plan-cache hits").inc()
    latency = registry.histogram(  # analysis: ignore[MN001] golden fixture
        "demo_latency_seconds", buckets=(0.25, 0.5, 1.0),
        help="statement latency")
    for value in (0.125, 0.375, 0.375, 0.75, 2.0):
        latency.observe(value)
    return registry


def _build_server() -> EngineServer:
    from repro.embeddings.pretrained import build_pretrained_model
    from repro.server import EngineServer
    from repro.storage.table import Table

    server = EngineServer(load_default_model=False)
    server.register_model(build_pretrained_model(seed=7), default=True)
    server.register_table("products", Table.from_dict({
        "pid": [1, 2, 3, 4],
        "ptype": ["sneakers", "parka", "sedan", "apple"],
        "price": [25.0, 120.0, 9000.0, 2.0],
    }))
    server.register_table("kb", Table.from_dict({
        "label": ["shoes", "jacket", "car", "fruit"],
        "category": ["clothes", "clothes", "vehicle", "food"],
    }))
    return server


def _schema(registry: MetricsRegistry) -> dict[str, str]:
    return {inst.name: inst.kind for inst in registry.collect()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__.split("\n")[0])
    parser.add_argument("--write-golden", action="store_true",
                        help="regenerate the golden files and exit")
    arguments = parser.parse_args(argv)

    failures: list[str] = []

    def check(ok: bool, label: str, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    with _build_server() as server:
        server.sql(JOIN)
        traces = server.traces()
        check(len(traces) == 1, "one statement, one trace",
              f"got {len(traces)}")
        trace = traces[-1]
        missing = [name for name in EXPECTED_SPANS
                   if trace.find(name) is None]
        check(not missing, "span tree complete", f"missing {missing}")
        operators = [child.name for execute in trace.find_all("execute")
                     for child in execute.children
                     if child.name.startswith("operator:")]
        check(bool(operators), "per-operator execute spans",
              "no operator:* spans under execute")

        text = server.export_prometheus()
        snapshot = server.export_json()
        try:
            parsed = parse_prometheus(text)
            check(parsed == snapshot, "prometheus re-parses to snapshot",
                  "parsed samples differ from export_json()")
        except ValueError as error:
            check(False, "prometheus page validates", str(error))
        live_schema = _schema(server.state.metrics_registry)

    demo = demo_registry()
    demo_text = prometheus_text(demo)
    demo_snapshot = json_snapshot(demo)

    if arguments.write_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        (GOLDEN_DIR / PROMETHEUS_GOLDEN).write_text(demo_text)
        (GOLDEN_DIR / SNAPSHOT_GOLDEN).write_text(
            json.dumps(demo_snapshot, indent=2, sort_keys=True) + "\n")
        (GOLDEN_DIR / SCHEMA_GOLDEN).write_text(
            json.dumps(live_schema, indent=2, sort_keys=True) + "\n")
        print(f"wrote goldens under {GOLDEN_DIR}")
        return 0

    check(demo_text == (GOLDEN_DIR / PROMETHEUS_GOLDEN).read_text(),
          "prometheus golden matches",
          "regenerate with --write-golden if the change is deliberate")
    check(demo_snapshot == json.loads(
        (GOLDEN_DIR / SNAPSHOT_GOLDEN).read_text()),
          "json snapshot golden matches", "snapshot differs")

    golden_schema = json.loads((GOLDEN_DIR / SCHEMA_GOLDEN).read_text())
    if live_schema != golden_schema:
        added = sorted(set(live_schema) - set(golden_schema))
        removed = sorted(set(golden_schema) - set(live_schema))
        retyped = sorted(name for name in set(live_schema) & set(golden_schema)
                         if live_schema[name] != golden_schema[name])
        check(False, "metric schema matches golden",
              f"added={added} removed={removed} retyped={retyped}")
    else:
        check(True, "metric schema matches golden")

    if failures:
        print(f"\n{len(failures)} observability smoke failure(s)")
        return 1
    print("\nobservability smoke clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
