"""Observability substrate: metrics registry, span tracer, exporters.

One statement, one story.  Every serving layer reports into the same
two structures — a :class:`~repro.obs.metrics.MetricsRegistry` of typed
instruments (counters, gauges, fixed-bucket histograms) and a
hierarchical :class:`~repro.obs.trace.Trace` of spans — so the three
reporting surfaces (``EngineServer.metrics()``, the Prometheus/JSON
exporters, and EXPLAIN ANALYZE / ``QueryProfile.pretty()``) cannot
disagree: they all render the same instruments and the same span tree.

See ``docs/observability.md`` for the span taxonomy and the metric
catalog; ``analysis/metric_names.py`` is the machine-checked half of
that catalog (rules MN001–MN003).
"""

from repro.obs.export import json_snapshot, parse_prometheus, prometheus_text
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, hit_ratio)
from repro.obs.trace import (
    NULL_SPAN, NULL_TRACE, Span, Trace, Tracer, attach_operator_spans,
    attach_profile_spans)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "hit_ratio",
    "NULL_SPAN", "NULL_TRACE", "Span", "Trace", "Tracer",
    "attach_operator_spans", "attach_profile_spans",
    "json_snapshot", "parse_prometheus", "prometheus_text",
]
