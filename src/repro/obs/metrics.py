"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

Subsystems register their instruments **once** (at construction) and
update them on the hot path; exporters read them all through the owning
:class:`MetricsRegistry`.  Metric names are a checked vocabulary: every
literal passed to ``registry.counter/gauge/histogram`` must appear in
``analysis/metric_names.py`` (static-analysis rules MN001–MN003), so
the docs' metric catalog and the code cannot drift apart.

Threading contract (declared in ``analysis/lock_levels.py``):

- ``Counter._lock`` / ``Histogram._lock`` / ``MetricsRegistry._lock``
  are level-4 leaves.  An instrument never calls out while holding its
  lock, so subsystems at level 1 may update instruments inside their
  own critical sections; the level-4 caches that do the same declare
  the edge in ``ALLOWED_SAME_LEVEL``.
- :class:`Gauge` reads are lock-free: a gauge is either a single
  atomic slot or a callback evaluated by the exporter *outside* the
  registry lock (see :meth:`MetricsRegistry.collect`), so a callback
  may take its subsystem's own locks without ordering hazards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Union

#: Canonical label form: sorted ``(key, value)`` pairs.
LabelSet = tuple[tuple[str, str], ...]
LabelsArg = Union[Mapping[str, str], Iterable[tuple[str, str]], None]

Instrument = Union["Counter", "Gauge", "Histogram"]


def hit_ratio(hits: float, misses: float) -> float:
    """The one shared hit-ratio rule: 0 probes is a 0.0 ratio, not NaN.

    Every surface that reports a ratio (``QueryProfile``, the cache
    ``stats()`` dataclasses, ``server.metrics()``, the exporters) goes
    through this helper so the 0/0 case cannot diverge per call site.
    """
    total = hits + misses
    return hits / total if total else 0.0


def _labels(labels: LabelsArg) -> LabelSet:
    if not labels:
        return ()
    pairs = labels.items() if isinstance(labels, Mapping) else labels
    return tuple(sorted((str(k), str(v)) for k, v in pairs))


def flat_name(name: str, labels: LabelSet) -> str:
    """Render ``name{k="v",...}`` — the JSON-snapshot key format."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic integer counter (resettable only via ``reset``)."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = (),
                 help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value: a settable slot or a read-time callback."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None,
                 labels: LabelSet = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def bind(self, fn: Callable[[], float]) -> None:
        """Re-point the callback (a cache instance was replaced)."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        return float(fn()) if fn is not None else self._value


class Histogram:
    """Fixed upper-edge buckets plus exact sum/count.

    ``observe(v)`` lands in the first bucket whose edge is ``>= v``
    (Prometheus ``le`` semantics); values above the last edge land in
    the implicit ``+Inf`` bucket.
    """

    kind = "histogram"
    DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)
    __slots__ = ("name", "labels", "help", "upper_edges",
                 "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 labels: LabelSet = (), help: str = "") -> None:
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError(f"bucket edges must be sorted: {buckets!r}")
        self.name = name
        self.labels = labels
        self.help = help
        self.upper_edges = tuple(float(edge) for edge in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.upper_edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.upper_edges, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.upper_edges) + 1)
            self._sum = 0.0
            self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        edges = [*self.upper_edges, float("inf")]
        out: list[tuple[float, int]] = []
        running = 0
        for edge, count in zip(edges, counts):
            running += count
            out.append((edge, running))
        return out


class MetricsRegistry:
    """Process-local instrument registry, one per :class:`EngineState`.

    Registration is idempotent on ``(name, labels)``: re-registering
    returns the existing instrument (re-binding a gauge's callback when
    a new one is supplied), so a cache that is cleared and rebuilt
    keeps reporting under the same metric identity.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelSet], Instrument] = {}

    def _register(self, key: tuple[str, LabelSet],
                  make: Callable[[], Instrument]) -> Instrument:
        with self._lock:
            existing = self._instruments.get(key)
            if existing is None:
                existing = self._instruments[key] = make()
            return existing

    def counter(self, name: str, labels: LabelsArg = None,
                help: str = "") -> Counter:
        got = self._register(
            (name, _labels(labels)),
            lambda: Counter(name, _labels(labels), help))
        if not isinstance(got, Counter):
            raise TypeError(f"{name} already registered as {got.kind}")
        return got

    def gauge(self, name: str, fn: Callable[[], float] | None = None,
              labels: LabelsArg = None, help: str = "") -> Gauge:
        got = self._register(
            (name, _labels(labels)),
            lambda: Gauge(name, fn, _labels(labels), help))
        if not isinstance(got, Gauge):
            raise TypeError(f"{name} already registered as {got.kind}")
        if fn is not None and got._fn is not fn:
            got.bind(fn)
        return got

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = Histogram.DEFAULT_BUCKETS,
                  labels: LabelsArg = None, help: str = "") -> Histogram:
        got = self._register(
            (name, _labels(labels)),
            lambda: Histogram(name, buckets, _labels(labels), help))
        if not isinstance(got, Histogram):
            raise TypeError(f"{name} already registered as {got.kind}")
        return got

    def collect(self) -> list[Instrument]:
        """Snapshot of instruments sorted by ``(name, labels)``.

        The registry lock is released before callers evaluate gauge
        callbacks, so callbacks may take subsystem locks freely.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _, instrument in items]

    def get(self, name: str, labels: LabelsArg = None) -> Instrument | None:
        with self._lock:
            return self._instruments.get((name, _labels(labels)))

    def names(self) -> set[str]:
        with self._lock:
            return {name for name, _ in self._instruments}
