"""Hierarchical span tracer with explicit context propagation.

A :class:`Trace` is a per-statement span tree.  It is handed down the
call chain as an argument (``Session.sql`` → ``plan_for`` → probes →
``execute``; ``EngineServer.submit`` → scheduler closure → worker) —
never through a thread-local, so the scheduler's worker pool cannot
leak spans between concurrent statements.

Spans record *durations*, not absolute timestamps: each span's
``seconds`` is measured by the trace's injected monotonic clock, which
keeps the tree meaningful even when planning happens on the client
thread and execution on a worker, and makes tests deterministic with a
stub clock.  Queue time, measured by the scheduler's own clock, is
grafted in post-hoc via :meth:`Trace.span_at`.

Disabled tracing is the :data:`NULL_TRACE` singleton — every method is
a constant-time no-op on shared singletons (no allocation), which is
what keeps the ``trace_sample=0`` overhead on the result-cache hot
path under the 1% budget enforced by ``benchmarks/bench_result_cache``.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Protocol, TextIO, Union

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

AttrValue = Union[str, int, float, bool, None, tuple[int, ...]]


class Span:
    """One named region: duration, attributes, child spans."""

    __slots__ = ("name", "seconds", "attrs", "children")

    def __init__(self, name: str, seconds: float = 0.0,
                 attrs: dict[str, AttrValue] | None = None) -> None:
        self.name = name
        self.seconds = seconds
        self.attrs: dict[str, AttrValue] = attrs if attrs is not None else {}
        self.children: list[Span] = []

    @property
    def enabled(self) -> bool:
        return True

    def annotate(self, **attrs: AttrValue) -> None:
        self.attrs.update(attrs)

    def child(self, name: str, seconds: float = 0.0,
              **attrs: AttrValue) -> Span:
        """Append a pre-measured child span (post-hoc grafting)."""
        span = Span(name, seconds=seconds, attrs=dict(attrs))
        self.children.append(span)
        return span

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in preorder (self included)."""
        if self.name == name:
            return self
        for child in self.children:
            got = child.find(name)
            if got is not None:
                return got
        return None

    def find_all(self, name: str) -> list[Span]:
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find_all(name))
        return out

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name,
                               "seconds": round(self.seconds, 9)}
        if self.attrs:
            out["attrs"] = {k: list(v) if isinstance(v, tuple) else v
                            for k, v in self.attrs.items()}
        if self.children:
            out["spans"] = [child.to_dict() for child in self.children]
        return out

    def pretty(self, indent: int = 0) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        line = f"{'  ' * indent}{self.name}  {self.seconds * 1e3:.3f} ms"
        if attrs:
            line += f"  [{attrs}]"
        return "\n".join([line] + [c.pretty(indent + 1)
                                   for c in self.children])


class _SpanHandle:
    """Context manager that times one span and manages the stack."""

    __slots__ = ("_trace", "span", "_t0")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._trace._stack.append(self.span)
        self._t0 = self._trace._clock()
        return self.span

    def __exit__(self, *exc: object) -> None:
        self.span.seconds = self._trace._clock() - self._t0
        self._trace._stack.pop()


class Trace:
    """A live span tree for one statement."""

    enabled = True
    __slots__ = ("root", "_stack", "_clock")

    def __init__(self, name: str, clock: Callable[[], float],
                 **attrs: AttrValue) -> None:
        self.root = Span(name, attrs=dict(attrs))
        self._stack = [self.root]
        self._clock = clock

    def span(self, name: str, **attrs: AttrValue) -> _SpanHandle:
        span = Span(name, attrs=dict(attrs))
        self._stack[-1].children.append(span)
        return _SpanHandle(self, span)

    def span_at(self, name: str, seconds: float,
                **attrs: AttrValue) -> Span:
        """Graft a pre-measured span (e.g. scheduler queue wait)."""
        span = Span(name, seconds=seconds, attrs=dict(attrs))
        self._stack[-1].children.append(span)
        return span

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def annotate(self, **attrs: AttrValue) -> None:
        self.root.attrs.update(attrs)

    def finish(self, total_seconds: float | None = None) -> None:
        if total_seconds is not None:
            self.root.seconds = total_seconds
        elif not self.root.seconds:
            self.root.seconds = sum(
                child.seconds for child in self.root.children)

    def find(self, name: str) -> Span | None:
        return self.root.find(name)

    def find_all(self, name: str) -> list[Span]:
        return self.root.find_all(name)

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    def pretty(self) -> str:
        return self.root.pretty()


class _NullHandle:
    """Reusable no-op context manager returning the null span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


class _NullSpan:
    __slots__ = ()
    name = ""
    seconds = 0.0

    @property
    def enabled(self) -> bool:
        return False

    def annotate(self, **attrs: AttrValue) -> None:
        return None

    def child(self, name: str, seconds: float = 0.0,
              **attrs: AttrValue) -> "_NullSpan":
        return NULL_SPAN

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list[Span]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}


class NullTrace:
    """Disabled trace: every operation is a constant-time no-op."""

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: AttrValue) -> _NullHandle:
        return _NULL_HANDLE

    def span_at(self, name: str, seconds: float,
                **attrs: AttrValue) -> _NullSpan:
        return NULL_SPAN

    @property
    def current(self) -> _NullSpan:
        return NULL_SPAN

    def annotate(self, **attrs: AttrValue) -> None:
        return None

    def finish(self, total_seconds: float | None = None) -> None:
        return None

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list[Span]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}

    def pretty(self) -> str:
        return "(tracing disabled)"


NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()
NULL_TRACE = NullTrace()

#: What flows through the engine: a real trace or the null singleton.
AnyTrace = Union[Trace, NullTrace]
AnySpan = Union[Span, _NullSpan]


class _OperatorLike(Protocol):
    label: str
    depth: int
    rows_out: int
    seconds: float


def attach_operator_spans(parent: AnySpan,
                          operators: "list[_OperatorLike]") -> None:
    """Mirror ``QueryProfile.operators`` as child spans of ``parent``.

    The span tree and the profile's operator table are built from the
    same rows (label, depth, rows_out, seconds), so EXPLAIN ANALYZE,
    ``QueryProfile.pretty()``, and the trace cannot disagree on where
    execution time went.
    """
    if not parent.enabled or not isinstance(parent, Span):
        return
    stack: list[tuple[int, Span]] = [(-1, parent)]
    for op in operators:
        while stack[-1][0] >= op.depth:
            stack.pop()
        span = Span(f"operator:{op.label}", seconds=op.seconds,
                    attrs={"rows_out": op.rows_out, "depth": op.depth})
        stack[-1][1].children.append(span)
        stack.append((op.depth, span))


class _ProfileLike(Protocol):
    operators: "list[_OperatorLike]"
    fused_pipelines: int
    kernel_cache_hits: int
    kernel_compiles: int
    kernel_compile_seconds: float
    kernel_backends: "list[str]"
    cache_hits: int
    cache_misses: int
    arena_rows: int
    arena_bytes: int


def attach_profile_spans(parent: AnySpan, profile: _ProfileLike) -> None:
    """Operator + cache-probe child spans from a ``QueryProfile``.

    One call site per serving path (``Session.execute``,
    ``EngineServer._execute``) so the execute span's children always
    have the same shape: the operator tree, then a
    ``kernel_cache.probe`` span when pipelines were fused, then an
    ``embedding_cache.probe`` span when any embedding was requested.
    """
    if not parent.enabled or not isinstance(parent, Span):
        return
    attach_operator_spans(parent, profile.operators)
    if profile.fused_pipelines:
        parent.child(
            "kernel_cache.probe",
            seconds=profile.kernel_compile_seconds,
            hits=profile.kernel_cache_hits,
            compiles=profile.kernel_compiles,
            backends=",".join(sorted(set(profile.kernel_backends))))
    if profile.cache_hits or profile.cache_misses:
        parent.child(
            "embedding_cache.probe",
            hits=profile.cache_hits, misses=profile.cache_misses,
            rows=profile.arena_rows, bytes=profile.arena_bytes)


class Tracer:
    """Creates, samples, and collects statement traces.

    ``sample`` is a deterministic rate: statement *n* is traced iff
    ``floor(n * sample)`` crosses an integer — ``1.0`` traces every
    statement, ``0.0`` none, ``0.25`` every fourth.  Completed traces
    are kept in a bounded ring (``keep``) and, when ``sink`` names a
    path or file object, appended as NDJSON events.
    """

    def __init__(self, sample: float = 1.0,
                 clock: Callable[[], float] = time.perf_counter,
                 wall_clock: Callable[[], float] = time.time,
                 sink: str | Path | TextIO | None = None,
                 keep: int = 64,
                 registry: "MetricsRegistry | None" = None) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"trace_sample must be in [0, 1]: {sample}")
        self.sample = sample
        self._clock = clock
        self._wall_clock = wall_clock
        self._sink_path = Path(sink) if isinstance(sink, (str, Path)) \
            else None
        self._sink_file: TextIO | None = \
            sink if self._sink_path is None and sink is not None else None
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._completed: deque[Trace] = deque(maxlen=keep)
        self._traces_total = registry.counter(
            "engine_traces_total",
            help="statement traces sampled and completed") \
            if registry is not None else None

    def start(self, name: str, **attrs: AttrValue) -> AnyTrace:
        sample = self.sample
        if sample >= 1.0:
            return Trace(name, self._clock, **attrs)
        if sample <= 0.0:
            return NULL_TRACE
        n = next(self._counter)
        if math.floor(n * sample) > math.floor((n - 1) * sample):
            return Trace(name, self._clock, **attrs)
        return NULL_TRACE

    def finish(self, trace: AnyTrace,
               total_seconds: float | None = None) -> None:
        if not trace.enabled or not isinstance(trace, Trace):
            return
        trace.finish(total_seconds)
        event: dict[str, Any] | None = None
        if self._sink_path is not None or self._sink_file is not None:
            event = {"ts": round(self._wall_clock(), 6), **trace.to_dict()}
        with self._lock:
            self._completed.append(trace)
            if event is not None:
                sink = self._sink_file
                if sink is None:
                    sink = self._sink_file = \
                        open(self._sink_path, "a", encoding="utf-8") \
                        if self._sink_path is not None else None
                if sink is not None:
                    sink.write(json.dumps(event, sort_keys=True) + "\n")
                    sink.flush()
        if self._traces_total is not None:
            self._traces_total.inc()

    def completed(self) -> list[Trace]:
        with self._lock:
            return list(self._completed)

    def close(self) -> None:
        with self._lock:
            if self._sink_file is not None and self._sink_path is not None:
                self._sink_file.close()
                self._sink_file = None
