"""Schemas: ordered, named, typed fields.

Logical plan nodes carry a :class:`Schema`; the optimizer's rewrite rules
and the binder rely on schema algebra (concat for joins, projection for
column pruning, qualification for disambiguation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.storage.types import DataType


@dataclass(frozen=True)
class Field:
    """A named, typed column."""

    name: str
    dtype: DataType

    def renamed(self, name: str) -> "Field":
        return Field(name, self.dtype)

    def qualified(self, qualifier: str) -> "Field":
        """Prefix with a qualifier unless already qualified with it."""
        if self.name.startswith(qualifier + "."):
            return self
        return Field(f"{qualifier}.{self.name}", self.dtype)


class Schema:
    """An ordered collection of fields with unique names."""

    def __init__(self, fields: list[Field] | tuple[Field, ...]):
        names = [field.name for field in fields]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._fields = tuple(fields)
        self._index = {field.name: i for i, field in enumerate(self._fields)}

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> list[str]:
        return [field.name for field in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self):
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"

    def field(self, name: str) -> Field:
        index = self.index_of(name)
        return self._fields[index]

    def index_of(self, name: str) -> int:
        """Index of column ``name``; supports unambiguous suffix lookup.

        ``index_of("price")`` finds ``products.price`` when exactly one
        qualified column has that suffix — the binder leans on this.
        """
        if name in self._index:
            return self._index[name]
        suffix_matches = [
            i for i, field in enumerate(self._fields)
            if field.name.endswith("." + name)
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        if len(suffix_matches) > 1:
            names = [self._fields[i].name for i in suffix_matches]
            raise SchemaError(f"ambiguous column {name!r}: matches {names}")
        raise SchemaError(
            f"unknown column {name!r}; available: {self.names}"
        )

    def dtype_of(self, name: str) -> DataType:
        return self.field(name).dtype

    def select(self, names: list[str]) -> "Schema":
        return Schema([self.field(self.names[self.index_of(n)]) for n in names])

    def concat(self, other: "Schema") -> "Schema":
        return Schema(list(self._fields) + list(other.fields))

    def qualified(self, qualifier: str) -> "Schema":
        return Schema([field.qualified(qualifier) for field in self._fields])

    def renamed(self, mapping: dict[str, str]) -> "Schema":
        return Schema([
            field.renamed(mapping.get(field.name, field.name))
            for field in self._fields
        ])
