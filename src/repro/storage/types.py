"""Column data types and value coercion.

Five logical types cover the paper's workloads.  ``DATE`` is stored as
int64 proleptic-Gregorian ordinals (days), which keeps date comparisons
plain integer comparisons — the "Date Taken > date" predicate of Figure 2
costs the same as any numeric filter.
"""

from __future__ import annotations

import datetime
import enum

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Logical column types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64, DataType.DATE)

    @classmethod
    def infer(cls, value) -> "DataType":
        """Infer the logical type of a Python value."""
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT64
        if isinstance(value, (float, np.floating)):
            return cls.FLOAT64
        if isinstance(value, datetime.date):
            return cls.DATE
        if isinstance(value, str):
            return cls.STRING
        raise SchemaError(f"cannot infer DataType for {value!r}")


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(object),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.DATE: np.dtype(np.int64),
}

_EPOCH = datetime.date(1970, 1, 1).toordinal()


def date_to_int(value: datetime.date | str) -> int:
    """Days since 1970-01-01 for a date or ISO string."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return value.toordinal() - _EPOCH


def int_to_date(days: int) -> datetime.date:
    """Inverse of :func:`date_to_int`."""
    return datetime.date.fromordinal(int(days) + _EPOCH)


def parse_date(text: str) -> int:
    """Parse an ISO date string to its int64 storage value."""
    return date_to_int(text)


def coerce_array(values, dtype: DataType) -> np.ndarray:
    """Coerce a sequence of Python values to a storage array of ``dtype``.

    Accepts existing NumPy arrays (validated / converted as needed),
    datetime values for DATE columns, and ISO strings for DATE columns.
    """
    if isinstance(values, np.ndarray) and dtype is not DataType.DATE:
        if dtype is DataType.STRING:
            return values.astype(object)
        return values.astype(dtype.numpy_dtype)
    if dtype is DataType.DATE:
        converted = [
            value if isinstance(value, (int, np.integer)) else date_to_int(value)
            for value in values
        ]
        return np.asarray(converted, dtype=np.int64)
    if dtype is DataType.STRING:
        return np.asarray([None if v is None else str(v) for v in values],
                          dtype=object)
    return np.asarray(list(values), dtype=dtype.numpy_dtype)
