"""Catalog: name -> table (+ cached statistics) within a session.

The catalog is shared state under the serving layer — many client
sessions read it concurrently while ``register_table`` / ``drop`` /
statistics refreshes mutate it — so every public method is serialized
on an internal reentrant mutex, and every mutation that can change what
the optimizer would produce bumps a monotonically increasing
**version**.  The plan cache keys cached plans on this version: a bump
is the invalidation signal, so stale plans age out without the catalog
knowing the plan cache exists.

Version-bumping events:

- ``register`` (new table *or* replacement of an existing name),
- ``drop``,
- statistics (re)computation — first lazy computation included, since
  fresh statistics change cardinality estimates and therefore the plan
  the optimizer would pick for the same SQL text.
"""

from __future__ import annotations

import threading

from repro.errors import CatalogError
from repro.storage.statistics import TableStats, compute_table_stats
from repro.storage.table import Table


class Catalog:
    """Tables and their statistics, keyed by name."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._version = 0
        self._lock = threading.RLock()

    @property
    def version(self) -> int:
        """Monotonic counter of schema/statistics changes.

        Consumers that cache anything derived from catalog contents
        (bound plans, cardinality estimates) include this in their cache
        key; any registration, drop, or statistics refresh bumps it.
        """
        with self._lock:
            return self._version

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        with self._lock:
            if name in self._tables and not replace:
                raise CatalogError(f"table {name!r} already registered")
            self._tables[name] = table
            self._stats.pop(name, None)
            self._version += 1

    def get(self, name: str) -> Table:
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                known = ", ".join(sorted(self._tables)) or "<none>"
                raise CatalogError(
                    f"unknown table {name!r}; registered tables: {known}"
                ) from None

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._tables[name]
            self._stats.pop(name, None)
            self._version += 1

    def stats(self, name: str) -> TableStats:
        """Statistics for ``name``, computed on first request and cached.

        The first computation bumps :attr:`version`: statistics change
        the optimizer's estimates, so plans cached before stats existed
        must not be served afterwards.
        """
        with self._lock:
            if name not in self._stats:
                self._stats[name] = compute_table_stats(self.get(name))
                self._version += 1
            return self._stats[name]

    def refresh_stats(self, name: str) -> TableStats:
        """Force statistics recomputation for ``name`` (version bump)."""
        with self._lock:
            self._stats.pop(name, None)
            return self.stats(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)
