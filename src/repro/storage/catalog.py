"""Catalog: name -> table (+ cached statistics) within a session."""

from __future__ import annotations

from repro.errors import CatalogError
from repro.storage.statistics import TableStats, compute_table_stats
from repro.storage.table import Table


class Catalog:
    """Tables and their statistics, keyed by name."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        if name in self._tables and not replace:
            raise CatalogError(f"table {name!r} already registered")
        self._tables[name] = table
        self._stats.pop(name, None)

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise CatalogError(
                f"unknown table {name!r}; registered tables: {known}"
            ) from None

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self._stats.pop(name, None)

    def stats(self, name: str) -> TableStats:
        """Statistics for ``name``, computed on first request and cached."""
        if name not in self._stats:
            self._stats[name] = compute_table_stats(self.get(name))
        return self._stats[name]

    def names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
