"""Catalog: name -> table (+ cached statistics) within a session.

The catalog is shared state under the serving layer — many client
sessions read it concurrently while ``register_table`` / ``drop`` /
statistics refreshes mutate it — so every public method is serialized
on an internal reentrant mutex, and every mutation that can change what
the optimizer would produce bumps a monotonically increasing
**version**.  The plan cache keys cached plans on this version: a bump
is the invalidation signal, so stale plans age out without the catalog
knowing the plan cache exists.

Version-bumping events:

- ``register`` (new table *or* replacement of an existing name),
- ``drop``,
- statistics (re)computation — first lazy computation included, since
  fresh statistics change cardinality estimates and therefore the plan
  the optimizer would pick for the same SQL text.

**Data versions** (the ingest split, ``docs/ingest.md``): appends and
upserts change *rows*, never the schema, so they bump a per-table
``data_version`` instead of :attr:`version`.  Plan- and kernel-cache
entries key on schema identity only and survive; the result cache keys
on ``(table, data_version)`` pairs and invalidates (or delta-patches)
exactly the entries that read the mutated table.  Statistics that were
already computed are refreshed **in place** — merged forward from the
delta in O(delta) on append (:func:`merge_table_stats`), recomputed on
replace — *without* a version bump: a plan optimized against slightly older
row counts is still a valid plan (estimates drift, correctness does
not), whereas the lazy drop-and-recompute alternative would bump
:attr:`version` at the next planning call and silently nuke every
plan- and result-cache entry — defeating the precise invalidation the
data_version exists for.  Statistics never computed stay uncomputed
(the first ``stats()`` call still bumps, as always: plans cached
before any statistics existed must not be served after).
"""

from __future__ import annotations

import threading

from repro.errors import CatalogError
from repro.storage.statistics import (
    TableStats, compute_table_stats, merge_table_stats)
from repro.storage.table import Table


class Catalog:
    """Tables and their statistics, keyed by name."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._version = 0
        #: name -> monotonic row-data version (never reset, even across
        #: a drop + re-register: keys derived from an old incarnation
        #: must not collide with the new one).
        self._data_versions: dict[str, int] = {}
        self._lock = threading.RLock()

    @property
    def version(self) -> int:
        """Monotonic counter of schema/statistics changes.

        Consumers that cache anything derived from catalog contents
        (bound plans, cardinality estimates) include this in their cache
        key; any registration, drop, or statistics refresh bumps it.
        """
        with self._lock:
            return self._version

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        with self._lock:
            if name in self._tables and not replace:
                raise CatalogError(f"table {name!r} already registered")
            self._tables[name] = table
            self._stats.pop(name, None)
            self._version += 1

    def data_version(self, name: str) -> int:
        """Monotonic per-table row-data version (0 until first mutation).

        Bumped by :meth:`append_rows` / :meth:`replace_rows` — never by
        ``register``/``drop``, whose schema-identity changes bump
        :attr:`version` instead and already invalidate everything.
        """
        with self._lock:
            return self._data_versions.get(name, 0)

    def append_rows(self, name: str, delta: Table) -> int:
        """Append ``delta``'s rows to ``name``; returns the new
        data_version.

        A pure row append: the schema must match exactly, the catalog
        version does **not** move (plans stay valid), statistics are
        folded forward in place when present — an O(delta) merge, not a
        rescan (see the module docstring for why that must not bump the
        version) — and the per-table data_version bumps so row-keyed
        caches can invalidate or patch precisely.
        """
        with self._lock:
            base = self.get(name)
            _check_same_schema(name, base, delta)
            grown = Table.concat([base, delta])
            self._tables[name] = grown
            if name in self._stats:
                self._stats[name] = merge_table_stats(self._stats[name],
                                                      delta)
            versions = dict(self._data_versions)
            versions[name] = versions.get(name, 0) + 1
            self._data_versions = versions
            return versions[name]

    def replace_rows(self, name: str, table: Table) -> int:
        """Replace ``name``'s rows with ``table`` (same schema); returns
        the new data_version.

        The upsert path: in-place row updates are not append-monotone,
        so callers treat the bump as a targeted invalidation signal for
        every cache entry that read the table — but, like
        :meth:`append_rows`, the schema identity and therefore the
        catalog version (and all plans) survive.
        """
        with self._lock:
            base = self.get(name)
            _check_same_schema(name, base, table)
            self._tables[name] = table
            if name in self._stats:
                self._stats[name] = compute_table_stats(table)
            versions = dict(self._data_versions)
            versions[name] = versions.get(name, 0) + 1
            self._data_versions = versions
            return versions[name]

    def get(self, name: str) -> Table:
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                known = ", ".join(sorted(self._tables)) or "<none>"
                raise CatalogError(
                    f"unknown table {name!r}; registered tables: {known}"
                ) from None

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._tables[name]
            self._stats.pop(name, None)
            self._version += 1

    def stats(self, name: str) -> TableStats:
        """Statistics for ``name``, computed on first request and cached.

        The first computation bumps :attr:`version`: statistics change
        the optimizer's estimates, so plans cached before stats existed
        must not be served afterwards.
        """
        with self._lock:
            if name not in self._stats:
                self._stats[name] = compute_table_stats(self.get(name))
                self._version += 1
            return self._stats[name]

    def refresh_stats(self, name: str) -> TableStats:
        """Force statistics recomputation for ``name`` (version bump)."""
        with self._lock:
            self._stats.pop(name, None)
            return self.stats(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)


def _check_same_schema(name: str, base: Table, incoming: Table) -> None:
    base_shape = [(f.name, f.dtype) for f in base.schema.fields]
    new_shape = [(f.name, f.dtype) for f in incoming.schema.fields]
    if base_shape != new_shape:
        raise CatalogError(
            f"row mutation of {name!r} must preserve the schema: "
            f"table has {base_shape}, incoming rows have {new_shape}; "
            f"schema changes go through register(replace=True)")
