"""Columnar storage substrate: schemas, tables, catalog, statistics, IO."""

from repro.storage.types import DataType, date_to_int, int_to_date, parse_date
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.catalog import Catalog
from repro.storage.statistics import ColumnStats, TableStats, compute_table_stats
from repro.storage.csv_io import read_csv, read_jsonl, write_csv

__all__ = [
    "DataType",
    "date_to_int",
    "int_to_date",
    "parse_date",
    "Field",
    "Schema",
    "Table",
    "Catalog",
    "ColumnStats",
    "TableStats",
    "compute_table_stats",
    "read_csv",
    "read_jsonl",
    "write_csv",
]
