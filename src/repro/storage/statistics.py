"""Table and column statistics for cardinality estimation.

The optimizer's selectivity model (paper §V: "include high-level cost
information, such as the effect on the input/output cardinality") consumes
row counts, distinct-value counts, min/max, and equi-width histograms
computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.table import Table
from repro.storage.types import DataType

#: Histogram resolution for numeric columns.
HISTOGRAM_BINS = 32


@dataclass
class ColumnStats:
    """Statistics of one column."""

    name: str
    dtype: DataType
    count: int
    null_count: int
    distinct: int
    min_value: float | None = None
    max_value: float | None = None
    histogram: np.ndarray | None = field(default=None, repr=False)
    bin_edges: np.ndarray | None = field(default=None, repr=False)

    def selectivity_eq(self) -> float:
        """Estimated selectivity of ``col = literal`` (uniform over NDV)."""
        if self.distinct <= 0:
            return 0.0
        return 1.0 / self.distinct

    def selectivity_range(self, low: float | None, high: float | None) -> float:
        """Estimated selectivity of a (half-)open numeric range predicate."""
        if self.count == 0:
            return 0.0
        if self.histogram is not None and self.bin_edges is not None:
            return self._histogram_fraction(low, high)
        if self.min_value is None or self.max_value is None:
            return 1.0 / 3.0  # classic System-R magic number
        span = self.max_value - self.min_value
        if span <= 0:
            inside = ((low is None or low <= self.min_value)
                      and (high is None or high >= self.max_value))
            return 1.0 if inside else 0.0
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi <= lo:
            return 0.0
        return float(np.clip((hi - lo) / span, 0.0, 1.0))

    def _histogram_fraction(self, low: float | None, high: float | None) -> float:
        assert self.histogram is not None and self.bin_edges is not None
        edges = self.bin_edges
        counts = self.histogram.astype(np.float64)
        total = counts.sum()
        if total == 0:
            return 0.0
        lo = edges[0] if low is None else low
        hi = edges[-1] if high is None else high
        covered = 0.0
        for i in range(counts.shape[0]):
            left, right = edges[i], edges[i + 1]
            width = right - left
            if width <= 0:
                inside = lo <= left <= hi
                covered += counts[i] if inside else 0.0
                continue
            overlap = max(0.0, min(hi, right) - max(lo, left))
            covered += counts[i] * (overlap / width)
        return float(np.clip(covered / total, 0.0, 1.0))


@dataclass
class TableStats:
    """Statistics of a whole table."""

    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats | None:
        if name in self.columns:
            return self.columns[name]
        suffix = [c for n, c in self.columns.items() if n.endswith("." + name)]
        if len(suffix) == 1:
            return suffix[0]
        return None


def compute_column_stats(name: str, dtype: DataType,
                         values: np.ndarray) -> ColumnStats:
    """Compute stats for one column array."""
    count = int(values.shape[0])
    if dtype == DataType.STRING:
        mask = np.asarray([v is not None for v in values], dtype=bool)
        non_null = values[mask]
        distinct = len(set(non_null.tolist()))
        return ColumnStats(name, dtype, count, count - int(mask.sum()),
                           distinct)
    non_null = values
    null_count = 0
    if dtype == DataType.FLOAT64:
        finite = ~np.isnan(values)
        non_null = values[finite]
        null_count = count - int(finite.sum())
    distinct = int(np.unique(non_null).shape[0]) if non_null.shape[0] else 0
    stats = ColumnStats(name, dtype, count, null_count, distinct)
    if dtype.is_numeric or dtype == DataType.BOOL:
        if non_null.shape[0]:
            numeric = non_null.astype(np.float64)
            stats.min_value = float(numeric.min())
            stats.max_value = float(numeric.max())
            if stats.max_value > stats.min_value:
                hist, edges = np.histogram(numeric, bins=HISTOGRAM_BINS)
                stats.histogram = hist
                stats.bin_edges = edges
    return stats


def compute_table_stats(table: Table) -> TableStats:
    """Compute statistics for every column of ``table``."""
    columns = {
        field.name: compute_column_stats(
            field.name, field.dtype, table.columns[field.name]
        )
        for field in table.schema
    }
    return TableStats(row_count=table.num_rows, columns=columns)


def merge_table_stats(old: TableStats, delta: Table) -> TableStats:
    """Fold an appended ``delta`` into existing stats in O(delta) time.

    The ingest fast path: scanning the whole grown table on every
    append would make mutation cost O(table), so only the new rows are
    profiled and the summaries combine.  Counts, nulls, and min/max
    merge exactly; the distinct count takes the larger side (a lower
    bound — the overlap between old and new value sets is unknowable
    from summaries) and delta values are folded into the *old*
    histogram's bins, with out-of-range mass clamped to the boundary
    bins.  Both drifts affect cardinality estimates only, never
    results.
    """
    columns: dict[str, ColumnStats] = {}
    for field_ in delta.schema:
        prior = old.columns.get(field_.name)
        values = delta.columns[field_.name]
        if prior is None:
            columns[field_.name] = compute_column_stats(
                field_.name, field_.dtype, values)
            continue
        fresh = compute_column_stats(field_.name, field_.dtype, values)
        merged = ColumnStats(
            field_.name, field_.dtype, prior.count + fresh.count,
            prior.null_count + fresh.null_count,
            max(prior.distinct, fresh.distinct))
        bounds = [v for v in (prior.min_value, fresh.min_value)
                  if v is not None]
        merged.min_value = min(bounds) if bounds else None
        bounds = [v for v in (prior.max_value, fresh.max_value)
                  if v is not None]
        merged.max_value = max(bounds) if bounds else None
        if prior.histogram is not None and prior.bin_edges is not None:
            merged.histogram = prior.histogram
            merged.bin_edges = prior.bin_edges
            numeric = values
            if field_.dtype == DataType.FLOAT64:
                numeric = values[~np.isnan(values)]
            if numeric.shape[0]:
                clamped = np.clip(numeric.astype(np.float64),
                                  prior.bin_edges[0], prior.bin_edges[-1])
                hist, _ = np.histogram(clamped, bins=prior.bin_edges)
                merged.histogram = prior.histogram + hist
        columns[field_.name] = merged
    return TableStats(row_count=old.row_count + delta.num_rows,
                      columns=columns)
