"""CSV / JSON-lines readers and writers with schema inference.

A nod to the paper's NoDB/raw-data point (§VI, refs [30], [31]): sources
can be queried in place — ``read_csv`` infers a schema from a prefix sample
and materializes columns lazily per batch via :func:`scan_csv`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator

from repro.errors import SourceError
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType

_SAMPLE_ROWS = 100


def infer_csv_schema(path: str | Path, delimiter: str = ",") -> Schema:
    """Infer a schema from the header and a sample of rows."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SourceError(f"{path} is empty") from None
        samples: list[list[str]] = []
        for row in reader:
            samples.append(row)
            if len(samples) >= _SAMPLE_ROWS:
                break
    fields = []
    for index, name in enumerate(header):
        values = [row[index] for row in samples if index < len(row)]
        fields.append(Field(name, _infer_type(values)))
    return Schema(fields)


def read_csv(path: str | Path, schema: Schema | None = None,
             delimiter: str = ",") -> Table:
    """Read a whole CSV file into a table."""
    batches = list(scan_csv(path, schema=schema, delimiter=delimiter,
                            batch_size=1 << 30))
    if not batches:
        return Table.empty(schema or infer_csv_schema(path, delimiter))
    return Table.concat(batches)


def scan_csv(path: str | Path, schema: Schema | None = None,
             delimiter: str = ",", batch_size: int = 8192) -> Iterator[Table]:
    """Stream a CSV file as a sequence of table batches (NoDB-style)."""
    path = Path(path)
    if schema is None:
        schema = infer_csv_schema(path, delimiter)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader)
        positions = [header.index(field.name) for field in schema]
        rows: list[dict] = []
        for raw in reader:
            row = {}
            for field, position in zip(schema.fields, positions):
                text = raw[position] if position < len(raw) else ""
                row[field.name] = _parse_value(text, field.dtype)
            rows.append(row)
            if len(rows) >= batch_size:
                yield Table.from_rows(rows, schema)
                rows = []
        if rows:
            yield Table.from_rows(rows, schema)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table to CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.names)
        for row in table.to_rows():
            writer.writerow([row[name] for name in table.schema.names])


def read_jsonl(path: str | Path, schema: Schema) -> Table:
    """Read a JSON-lines file with an explicit schema."""
    path = Path(path)
    rows = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return Table.from_rows(rows, schema)


def _infer_type(values: list[str]) -> DataType:
    non_empty = [v for v in values if v != ""]
    if not non_empty:
        return DataType.STRING
    if all(_is_int(v) for v in non_empty):
        return DataType.INT64
    if all(_is_float(v) for v in non_empty):
        return DataType.FLOAT64
    if all(_is_date(v) for v in non_empty):
        return DataType.DATE
    if all(v.lower() in ("true", "false") for v in non_empty):
        return DataType.BOOL
    return DataType.STRING


def _parse_value(text: str, dtype: DataType):
    if dtype == DataType.STRING:
        return text
    if text == "":
        return None
    if dtype == DataType.INT64:
        return int(text)
    if dtype == DataType.FLOAT64:
        return float(text)
    if dtype == DataType.BOOL:
        return text.lower() == "true"
    if dtype == DataType.DATE:
        # accept both ISO strings and raw storage ints (round trips)
        stripped = text.lstrip("-")
        if stripped.isdigit():
            return int(text)
        return text  # coerce_array parses ISO strings for DATE columns
    raise SourceError(f"unsupported dtype {dtype}")


def _is_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def _is_float(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _is_date(text: str) -> bool:
    parts = text.split("-")
    if len(parts) != 3:
        return False
    try:
        from datetime import date

        date.fromisoformat(text)
        return True
    except ValueError:
        return False
