"""Columnar tables: the unit of data flowing through the engine.

A :class:`Table` is a schema plus one NumPy array per column.  Physical
operators exchange *tables as batches* (vectorized volcano): a scan slices
its source into fixed-size chunks with :meth:`Table.batches`, and every
downstream operator consumes/produces the same shape.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import SchemaError
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType, coerce_array


class Table:
    """Immutable-by-convention columnar table."""

    def __init__(self, schema: Schema, columns: dict[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.names}"
            )
        lengths = {name: arr.shape[0] for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self.schema = schema
        self.columns = columns

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, list], schema: Schema | None = None) -> "Table":
        """Build from ``{column: values}``; types inferred if no schema."""
        if schema is None:
            fields = []
            for name, values in data.items():
                if len(values) == 0:
                    raise SchemaError(
                        f"cannot infer type of empty column {name!r}; "
                        "pass an explicit schema"
                    )
                sample = next((v for v in values if v is not None), None)
                if sample is None:
                    raise SchemaError(f"column {name!r} is all null")
                fields.append(Field(name, DataType.infer(sample)))
            schema = Schema(fields)
        columns = {
            field.name: coerce_array(data[field.name], field.dtype)
            for field in schema
        }
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, rows: list[dict], schema: Schema) -> "Table":
        """Build from a list of row dicts."""
        data = {
            field.name: [row.get(field.name) for row in rows]
            for field in schema
        }
        columns = {
            field.name: coerce_array(data[field.name], field.dtype)
            for field in schema
        }
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        columns = {
            field.name: np.empty(0, dtype=field.dtype.numpy_dtype)
            for field in schema
        }
        return cls(schema, columns)

    @classmethod
    def concat(cls, tables: list["Table"]) -> "Table":
        """Vertically concatenate same-schema tables."""
        if not tables:
            raise SchemaError("concat of zero tables")
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema.names != schema.names:
                raise SchemaError("concat over mismatched schemas")
        columns = {
            name: np.concatenate([t.columns[name] for t in tables])
            for name in schema.names
        }
        return cls(schema, columns)

    # ------------------------------------------------------------------
    # Shape / access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self.schema.names:
            return 0
        return int(self.columns[self.schema.names[0]].shape[0])

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    def column(self, name: str) -> np.ndarray:
        index = self.schema.index_of(name)
        return self.columns[self.schema.names[index]]

    def row(self, index: int) -> dict:
        return {name: self.columns[name][index] for name in self.schema.names}

    def to_rows(self) -> list[dict]:
        names = self.schema.names
        return [
            {name: _to_python(self.columns[name][i]) for name in names}
            for i in range(self.num_rows)
        ]

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, rows={self.num_rows})"

    # ------------------------------------------------------------------
    # Transformations (each returns a new Table)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        columns = {name: arr[indices] for name, arr in self.columns.items()}
        return Table(self.schema, columns)

    def filter(self, mask: np.ndarray) -> "Table":
        if mask.shape[0] != self.num_rows:
            raise SchemaError("filter mask length mismatch")
        columns = {name: arr[mask] for name, arr in self.columns.items()}
        return Table(self.schema, columns)

    def select(self, names: list[str]) -> "Table":
        resolved = [self.schema.names[self.schema.index_of(n)] for n in names]
        schema = self.schema.select(resolved)
        columns = {name: self.columns[name] for name in resolved}
        return Table(schema, columns)

    def slice(self, start: int, stop: int) -> "Table":
        columns = {name: arr[start:stop] for name, arr in self.columns.items()}
        return Table(self.schema, columns)

    def with_column(self, field: Field, values: np.ndarray) -> "Table":
        if values.shape[0] != self.num_rows:
            raise SchemaError("with_column length mismatch")
        schema = Schema(list(self.schema.fields) + [field])
        columns = dict(self.columns)
        columns[field.name] = values
        return Table(schema, columns)

    def renamed(self, mapping: dict[str, str]) -> "Table":
        schema = self.schema.renamed(mapping)
        columns = {
            mapping.get(name, name): arr for name, arr in self.columns.items()
        }
        return Table(schema, columns)

    def qualified(self, qualifier: str) -> "Table":
        schema = self.schema.qualified(qualifier)
        columns = {
            new.name: self.columns[old.name]
            for old, new in zip(self.schema.fields, schema.fields)
        }
        return Table(schema, columns)

    def batches(self, batch_size: int) -> Iterator["Table"]:
        """Slice into batches of at most ``batch_size`` rows."""
        if batch_size <= 0:
            raise SchemaError("batch_size must be positive")
        total = self.num_rows
        if total == 0:
            return
        for start in range(0, total, batch_size):
            yield self.slice(start, min(start + batch_size, total))

    def sort_by(self, keys: list[tuple[str, bool]]) -> "Table":
        """Stable multi-key sort; ``keys`` are (column, ascending) pairs."""
        order = np.arange(self.num_rows)
        for name, ascending in reversed(keys):
            values = self.column(name)[order]
            if values.dtype == object:
                local = np.argsort(values.astype(str), kind="stable")
            else:
                local = np.argsort(values, kind="stable")
            if not ascending:
                local = local[::-1]
            order = order[local]
        return self.take(order)


def _to_python(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
