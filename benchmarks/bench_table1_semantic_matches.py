"""Table I — context-rich text labels that models may output.

Regenerates the paper's table: for each category, the semantic matches the
representation model produces (top-k cosine over the label vocabulary),
and measures match quality against the thesaurus ground truth plus the
latency of the vocabulary-restricted top-k search.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import ResultTable

import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.thesaurus import TABLE_I, default_thesaurus

K = 4


@pytest.fixture(scope="module")
def model():
    return build_pretrained_model(seed=7)


@pytest.fixture(scope="module")
def thesaurus():
    return default_thesaurus()


def generate_table(model, thesaurus) -> dict[str, list[str]]:
    """category -> top-K semantic matches over all thesaurus forms."""
    candidates = thesaurus.all_forms()
    return {
        category: [w for w, _ in model.most_similar(category, k=K,
                                                    candidates=candidates)]
        for category in TABLE_I
    }


def match_quality(matches: dict[str, list[str]], thesaurus):
    """Precision of matches against synonym/hyponym ground truth."""
    correct = 0
    total = 0
    for category, words in matches.items():
        allowed = thesaurus.synonyms_of(category)
        concept = thesaurus.concept_of(category)
        if concept is not None and concept.is_hypernym:
            allowed |= thesaurus.hyponym_forms(concept.name)
        else:
            parent = thesaurus.parent_of(concept.name) if concept else None
            if parent is not None:
                allowed |= {f for f in parent.forms}
        total += len(words)
        correct += sum(1 for w in words if w in allowed)
    return correct / total if total else 0.0


@pytest.mark.benchmark(group="table1")
def test_table1_topk_latency(benchmark, model, thesaurus):
    candidates = thesaurus.all_forms()
    result = benchmark(model.most_similar, "clothes", K, candidates)
    assert len(result) == K


def test_table1_regenerated(model, thesaurus, capsys):
    matches = generate_table(model, thesaurus)
    precision = match_quality(matches, thesaurus)
    with capsys.disabled():
        print_table(matches, precision)
    # every leaf category must recover >= 3 of the paper's 4 matches
    for category in ("dog", "cat", "shoes", "jacket"):
        overlap = set(matches[category]) & set(TABLE_I[category])
        assert len(overlap) >= 3, (category, matches[category])
    # hypernym categories must return hyponym forms
    for category in ("animal", "clothes"):
        hyponyms = thesaurus.hyponym_forms(category)
        own = thesaurus.synonyms_of(category)
        assert set(matches[category]) <= hyponyms | own
    assert precision >= 0.9


def print_table(matches: dict[str, list[str]], precision: float) -> None:
    table = ResultTable(
        "Table I — semantic matches per category (top-4, synthetic "
        "pretrained model)",
        ["category", "semantic matches (model output)", "paper's examples"])
    for category, words in matches.items():
        table.add(category, ", ".join(words),
                  ", ".join(TABLE_I[category]))
    table.show()
    print(f"ground-truth precision of all matches: {precision:.3f}")


def main() -> None:
    model = build_pretrained_model(seed=7)
    thesaurus = default_thesaurus()
    matches = generate_table(model, thesaurus)
    print_table(matches, match_quality(matches, thesaurus))


if __name__ == "__main__":
    main()
