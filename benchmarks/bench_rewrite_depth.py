"""Rewrite-engine and generic-plan benchmark: parity, promotion, demotion.

Defends the systematized rewrite engine and the generic-plan tier:

1. **Rewrite parity.**  A sweep of statements with negated/disjunctive
   predicates, renaming projections, joins, and aggregates answers
   bit-identically with the optimizer on and off — the phased rewrite
   suite (normalize -> pushdown -> breakup) never changes results.
   Every fixpoint must also converge.  Always enforced.
2. **Generic-plan hit rate.**  A parameterized statement family with a
   fresh literal per statement promotes after
   ``generic_promotion_threshold`` observations; the remaining sweep is
   served from the generic plan at >= 0.9 hit rate (the misses are the
   periodic full-optimization rechecks).  Every served result is
   bit-identical to a ``generic_plans=False`` control session.  Always
   enforced.
3. **Demotion.**  A join family whose literal flips the chosen physical
   plan is promoted in one selectivity regime, then probed in the
   other: the recheck detects the fingerprint change, drops the generic
   plan, and permanently demotes the family — later statements go back
   to per-literal optimization and never re-promote.  Results stay
   bit-identical throughout (a stale generic plan is slower, never
   wrong).  Always enforced.

Usage::

    PYTHONPATH=src python benchmarks/bench_rewrite_depth.py
    PYTHONPATH=src python benchmarks/bench_rewrite_depth.py --quick

``--quick`` (CI smoke) reduces sizes and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_rewrite_depth.json``
at the repository root, committed so later PRs have a trajectory to
defend.  Exits nonzero on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.engine.session import Session
from repro.engine.sql.binder import Binder
from repro.engine.sql.parser import parse_sql
from repro.optimizer.optimizer import Optimizer
from repro.storage.table import Table
from repro.utils.parallel import default_parallelism

FULL_ITEMS, FULL_ORDERS, FULL_SWEEP = 2_000, 10_000, 50
QUICK_ITEMS, QUICK_ORDERS, QUICK_SWEEP = 500, 2_500, 30

GENERIC_HIT_RATE_TARGET = 0.9

#: Rewrite-parity statements: negations and disjunctions that only the
#: normalize phase unlocks, pushdown through joins and aggregates, and
#: a conjunctive chain the breakup phase decomposes.
REWRITE_STATEMENTS = (
    "SELECT id, price FROM items WHERE NOT (price < 10.0 OR qty > 90)",
    "SELECT id FROM items WHERE price > 5.0 AND qty > 2 AND id > 10",
    "SELECT o.total FROM orders o JOIN items i ON o.item_id = i.id "
    "WHERE NOT (i.price < 100.0 OR o.total < 50.0)",
    "SELECT i.qty, COUNT(*) AS n FROM items i "
    "WHERE NOT (i.qty != 3 AND i.price < 30.0) GROUP BY i.qty",
    "SELECT qty, COUNT(*) AS n FROM items GROUP BY qty",
)

#: The promotion family: a fresh literal pair per statement, same plan
#: shape regardless of the literals.
GENERIC_FAMILY = "SELECT id, price FROM items WHERE price > {} AND qty = {}"

#: The demotion family: the ``i.price`` literal decides whether the
#: probe side is selective, which flips fusion/DIP placement — exactly
#: the plan-shape change the recheck must catch.
DEMOTION_FAMILY = ("SELECT o.total FROM orders o "
                   "JOIN items i ON o.item_id = i.id WHERE i.price > {}")


def make_tables(n_items: int, n_orders: int) -> dict[str, Table]:
    return {
        "items": Table.from_dict({
            "id": list(range(n_items)),
            "price": [i * 1.5 for i in range(n_items)],
            "qty": [i % 100 for i in range(n_items)],
        }),
        "orders": Table.from_dict({
            "item_id": [i % n_items for i in range(n_orders)],
            "total": [float(i % 97) for i in range(n_orders)],
        }),
    }


def build_session(tables: dict[str, Table], *,
                  generic_plans: bool = True) -> Session:
    session = Session(load_default_model=False, result_cache_bytes=0,
                      generic_plans=generic_plans)
    for name, table in tables.items():
        session.register_table(name, table)
    return session


def exact_equal(left: Table, right: Table) -> bool:
    """Bit-exact table comparison: names, dtypes, values (atol=0)."""
    if left.schema.names != right.schema.names:
        return False
    for name in left.schema.names:
        a, b = left.column(name), right.column(name)
        if a.dtype != b.dtype or not np.array_equal(a, b):
            return False
    return True


def run_rewrite_parity(tables: dict[str, Table]) -> dict:
    session = build_session(tables)
    mismatched, diverged = [], []
    depth_rows = []
    # a standalone optimizer over the same catalog reports what the
    # rewrite suite did per statement (the session's internal one is
    # per-statement and not exposed)
    optimizer = Optimizer(session.catalog,
                          execution_context=session.context)
    for statement in REWRITE_STATEMENTS:
        optimized = session.sql(statement)
        naive = session.sql(statement, optimize=False)
        if not exact_equal(optimized, naive):
            mismatched.append(statement)
        plan = Binder(session.catalog,
                      session.default_model_name).bind(
                          parse_sql(statement))
        optimizer.optimize(plan)
        report = optimizer.last_report
        if not report.rewrite_converged:
            diverged.append(statement)
        depth_rows.append({
            "statement": statement[:64],
            "rewrite_passes": report.rewrite_passes,
            "rules_fired": sum(report.rules_applied.values()),
            "rules_applied": dict(sorted(report.rules_applied.items())),
            "converged": report.rewrite_converged,
        })
    return {
        "rewrite_parity": not mismatched,
        "rewrite_mismatched": mismatched,
        "rewrite_converged": not diverged,
        "rewrite_depth": depth_rows,
    }


def run_generic_sweep(tables: dict[str, Table], sweep: int) -> dict:
    session = build_session(tables)
    control = build_session(tables, generic_plans=False)
    cache = session.state.plan_cache
    # warm lazy statistics so the catalog version is stable before the
    # family's first observation (otherwise promotion slips a statement)
    for s in (session, control):
        s.sql("SELECT id FROM items WHERE id > 0")
    threshold = cache.generic_promotion_threshold
    mismatched = 0
    with stopwatch() as clock:
        for i in range(sweep):
            statement = GENERIC_FAMILY.format(10.5 + i, i % 5)
            if not exact_equal(session.sql(statement),
                               control.sql(statement)):
                mismatched += 1
    stats = cache.stats()
    # post-promotion statements are the generic tier's addressable set;
    # its misses are the forced full-optimization rechecks
    addressable = sweep - threshold
    hit_rate = stats.generic_hits / addressable if addressable else 0.0
    return {
        "generic_sweep": sweep,
        "generic_promotion_threshold": threshold,
        "generic_promotions": stats.promotions,
        "generic_hits": stats.generic_hits,
        "generic_rechecks": stats.generic_rechecks,
        "generic_hit_rate": round(hit_rate, 4),
        "generic_hit_rate_target": GENERIC_HIT_RATE_TARGET,
        "generic_parity": mismatched == 0,
        "generic_sweep_seconds": round(clock.seconds, 4),
    }


def run_demotion(tables: dict[str, Table]) -> dict:
    session = build_session(tables)
    control = build_session(tables, generic_plans=False)
    cache = session.state.plan_cache
    cache.generic_recheck_interval = 2  # demote within two probes
    n_items = tables["items"].num_rows
    mismatched = 0

    def issue(price: float) -> None:
        nonlocal mismatched
        statement = DEMOTION_FAMILY.format(price)
        if not exact_equal(session.sql(statement),
                           control.sql(statement)):
            mismatched += 1

    issue(0.5)  # warm lazy statistics (stable catalog version)
    for price in (1.0, 2.0, 3.0):  # low-price regime: promote
        issue(price)
    promoted = cache.stats().promotions == 1

    # high-price regime: the probe side turns selective and the full
    # optimization at the recheck chooses a different physical plan
    flip = (n_items - 5) * 1.5
    for offset in range(3):
        issue(flip + offset)
    after_flip = cache.stats()

    # demoted families take per-literal optimization and never
    # re-promote, however many fresh literals arrive
    misses_before = after_flip.misses
    hits_before = after_flip.generic_hits
    for price in (4.0, 5.0, 6.0, 7.0):
        issue(price)
    final = cache.stats()
    custom_restored = (final.misses - misses_before == 4
                       and final.generic_hits == hits_before)
    return {
        "demotion_promoted_first": promoted,
        "demotion_demotions": after_flip.demotions,
        "demotion_generic_entries": final.generic_entries,
        "demotion_final_promotions": final.promotions,
        "demotion_custom_restored": custom_restored,
        "demotion_parity": mismatched == 0,
        "demotion_ok": (promoted and after_flip.demotions >= 1
                        and final.generic_entries == 0
                        and final.promotions == 1 and custom_restored),
    }


def run(n_items: int, n_orders: int, sweep: int) -> dict:
    tables = make_tables(n_items, n_orders)
    results = {
        "cpu_count": default_parallelism(),
        "n_items": n_items,
        "n_orders": n_orders,
    }
    results.update(run_rewrite_parity(tables))
    results.update(run_generic_sweep(tables, sweep))
    results.update(run_demotion(tables))
    results["metrics"] = metrics_snapshot(build_session(tables))
    results["platform"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes, no JSON "
                             "unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_rewrite_depth.json for full runs)")
    arguments = parser.parse_args(argv)

    sizes = ((QUICK_ITEMS, QUICK_ORDERS, QUICK_SWEEP) if arguments.quick
             else (FULL_ITEMS, FULL_ORDERS, FULL_SWEEP))
    started = time.perf_counter()
    results = run(*sizes)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        "Rewrite depth (phased suite, per statement)",
        ["statement", "passes", "rules fired", "converged"])
    for row in results["rewrite_depth"]:
        table.add(row["statement"], row["rewrite_passes"],
                  row["rules_fired"], row["converged"])
    table.show()
    print(f"\nrewrite parity: "
          f"{'OK' if results['rewrite_parity'] else 'MISMATCH'}   "
          f"generic hit rate: {results['generic_hit_rate']} "
          f"({results['generic_hits']} hits, "
          f"{results['generic_rechecks']} rechecks)   "
          f"generic parity: "
          f"{'OK' if results['generic_parity'] else 'MISMATCH'}   "
          f"demotion: {'OK' if results['demotion_ok'] else 'BROKEN'}")

    failures: list[str] = []
    if not results["rewrite_parity"]:
        failures.append(
            f"optimizer diverged on {results['rewrite_mismatched']}")
    if not results["rewrite_converged"]:
        failures.append("a rewrite fixpoint failed to converge")
    if results["generic_promotions"] < 1:
        failures.append("the literal sweep never promoted its family")
    if results["generic_hit_rate"] < GENERIC_HIT_RATE_TARGET:
        failures.append(
            f"generic hit rate {results['generic_hit_rate']} < "
            f"{GENERIC_HIT_RATE_TARGET}")
    if not results["generic_parity"]:
        failures.append("a generic-served result diverged from the "
                        "generic-disabled control")
    if not results["demotion_parity"]:
        failures.append("a result diverged during the demotion cycle")
    if not results["demotion_ok"]:
        failures.append(
            "demotion did not restore per-literal optimization "
            f"(demotions={results['demotion_demotions']}, "
            f"entries={results['demotion_generic_entries']}, "
            f"promotions={results['demotion_final_promotions']})")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_rewrite_depth.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
