"""Figure 4 — Additive effects of logical and physical optimizations.

The paper's experiment: a model-assisted semantic similarity join over two
arrays of strings (paper: 10k random Wikipedia strings; here the synthetic
equivalent, DESIGN.md §2), fastText-style embeddings dim=100, cosine
threshold 0.9.  The figure shows **two series** — "No Filter Pushdown"
and "Filter Pushdown 1%" — across **additive execution optimizations**:

====================  ===================================================
kernel (x-axis)       what it adds
====================  ===================================================
``eager python``      the analyst's first tool: embeddings loaded into
                      Python lists, nested loops, per-dimension dot
``prefetch``          embeddings prefetched into a contiguous float32
                      matrix (model hash-table data-access optimization)
``tight code``        one vectorized kernel call per row (fewer library
                      calls — the paper's "tighter code, C++" rung)
``simd``              float32 blocked GEMM on ONE core (vectorized fused
                      multiply-add inside the BLAS kernel)
``parallel``          the same blocked GEMM fanned out over a thread
                      pool (scale-up; BLAS releases the GIL)
====================  ===================================================

Each kernel is measured on the full inputs (no pushdown) and on inputs
pre-filtered at 1% selectivity (pushdown).  BLAS is pinned to one thread
(conftest) so "simd" and "parallel" stay distinct.

Run directly to print the two-series ladder; ``REPRO_BENCH_SCALE=paper``
uses the paper's 10k size (the eager-Python/no-pushdown cell is measured
at a capped size and scaled quadratically — clearly labelled — because it
is O(n^2 d) interpreted Python, the very pathology the figure documents).
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __package__ in (None, ""):  # direct `python benchmarks/bench_....py` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import FIG4_N, ResultTable, SCALE, once, stopwatch

import numpy as np
import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.semantic.cache import EmbeddingCache
from repro.semantic.join import (
    join_blocked,
    join_prefetched,
    join_python_eager,
    join_rowkernel,
)
from repro.vector.topk import threshold_pairs
from repro.workloads.wiki_strings import WikiStringWorkload

THRESHOLD = 0.9
#: Cap for the eager-Python kernel on the UNFILTERED inputs (quadratic).
NAIVE_CAP = {"small": 600, "medium": 1_200, "paper": 1_500}.get(SCALE, 600)
WORKERS = 8


class Fig4Setup:
    """Workload, model, and prefetched matrices shared by all cells."""

    def __init__(self, n: int):
        self.n = n
        workload = WikiStringWorkload(n=n, seed=23, selectivity=0.01)
        self.model = build_pretrained_model(seed=7)
        left, right = workload.pair()
        self.left_texts = list(left.column("text"))
        self.right_texts = list(right.column("text"))
        left_mask = left.column("views") >= workload.views_cutoff
        right_mask = right.column("views") >= workload.views_cutoff
        self.left_small = [t for t, keep in zip(self.left_texts, left_mask)
                           if keep]
        self.right_small = [t for t, keep in zip(self.right_texts,
                                                 right_mask) if keep]
        cache = EmbeddingCache(self.model)
        self.left_matrix_full = cache.matrix(self.left_texts)
        self.right_matrix_full = cache.matrix(self.right_texts)
        self.left_matrix_small = cache.matrix(self.left_small)
        self.right_matrix_small = cache.matrix(self.right_small)
        self.pool = ThreadPoolExecutor(max_workers=WORKERS)

    def values(self, pushdown: bool) -> tuple[list[str], list[str]]:
        if pushdown:
            return self.left_small, self.right_small
        return self.left_texts, self.right_texts

    def matrices(self, pushdown: bool) -> tuple[np.ndarray, np.ndarray]:
        if pushdown:
            return self.left_matrix_small, self.right_matrix_small
        return self.left_matrix_full, self.right_matrix_full


_SETUP: Fig4Setup | None = None


def get_setup() -> Fig4Setup:
    global _SETUP
    if _SETUP is None or _SETUP.n != FIG4_N:
        _SETUP = Fig4Setup(FIG4_N)
    return _SETUP


# ----------------------------------------------------------------------
# Kernels (each takes the setup and the pushdown flag)
# ----------------------------------------------------------------------
def kernel_eager_python(setup: Fig4Setup, pushdown: bool,
                        cap: int | None = None):
    left, right = setup.values(pushdown)
    if not pushdown and cap is not None:
        left, right = left[:cap], right[:cap]
    return join_python_eager(left, right, setup.model, THRESHOLD)


def kernel_prefetch(setup: Fig4Setup, pushdown: bool):
    left, right = setup.values(pushdown)
    return join_prefetched(left, right, setup.model, THRESHOLD)


def kernel_tight_code(setup: Fig4Setup, pushdown: bool):
    left, right = setup.matrices(pushdown)
    return join_rowkernel(left, right, THRESHOLD)


def kernel_simd(setup: Fig4Setup, pushdown: bool):
    left, right = setup.matrices(pushdown)
    return join_blocked(left, right, THRESHOLD, block=2048)


def kernel_parallel(setup: Fig4Setup, pushdown: bool):
    left, right = setup.matrices(pushdown)
    block = max(left.shape[0] // WORKERS, 8)
    right_t = np.ascontiguousarray(right.T)

    def work(start: int):
        stop = min(start + block, left.shape[0])
        rows, cols, scores = threshold_pairs(left[start:stop] @ right_t,
                                             THRESHOLD)
        return rows + start, cols, scores

    parts = list(setup.pool.map(work, range(0, left.shape[0], block)))
    parts = [p for p in parts if p[0].shape[0]]
    if not parts:
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.float32))
    return (np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]))


KERNELS = [
    ("eager python", kernel_eager_python),
    ("+ prefetch", kernel_prefetch),
    ("+ tight code", kernel_tight_code),
    ("+ simd", kernel_simd),
    ("+ parallel", kernel_parallel),
]


# ----------------------------------------------------------------------
# pytest-benchmark entry points: 5 kernels x 2 series
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def setup():
    return get_setup()


@pytest.mark.benchmark(group="fig4:no-pushdown")
def test_fig4_eager_python_full(benchmark, setup):
    result = once(benchmark, kernel_eager_python, setup, False,
                  cap=NAIVE_CAP)
    assert result[0] is not None


@pytest.mark.benchmark(group="fig4:no-pushdown")
def test_fig4_prefetch_full(benchmark, setup):
    result = once(benchmark, kernel_prefetch, setup, False)
    assert result[0].shape == result[1].shape


@pytest.mark.benchmark(group="fig4:no-pushdown")
def test_fig4_tight_code_full(benchmark, setup):
    result = benchmark(kernel_tight_code, setup, False)
    assert result[0].shape == result[1].shape


@pytest.mark.benchmark(group="fig4:no-pushdown")
def test_fig4_simd_full(benchmark, setup):
    reference = kernel_tight_code(setup, False)
    result = benchmark(kernel_simd, setup, False)
    assert set(zip(result[0].tolist(), result[1].tolist())) == \
        set(zip(reference[0].tolist(), reference[1].tolist()))


@pytest.mark.benchmark(group="fig4:no-pushdown")
def test_fig4_parallel_full(benchmark, setup):
    reference = kernel_simd(setup, False)
    result = benchmark(kernel_parallel, setup, False)
    assert set(zip(result[0].tolist(), result[1].tolist())) == \
        set(zip(reference[0].tolist(), reference[1].tolist()))


@pytest.mark.benchmark(group="fig4:pushdown-1pct")
def test_fig4_eager_python_pushdown(benchmark, setup):
    result = once(benchmark, kernel_eager_python, setup, True)
    assert result[0] is not None


@pytest.mark.benchmark(group="fig4:pushdown-1pct")
def test_fig4_prefetch_pushdown(benchmark, setup):
    reference = kernel_eager_python(setup, True)
    result = benchmark(kernel_prefetch, setup, True)
    assert set(zip(result[0].tolist(), result[1].tolist())) == \
        set(zip(reference[0].tolist(), reference[1].tolist()))


@pytest.mark.benchmark(group="fig4:pushdown-1pct")
def test_fig4_tight_code_pushdown(benchmark, setup):
    result = benchmark(kernel_tight_code, setup, True)
    assert result[0].shape == result[1].shape


@pytest.mark.benchmark(group="fig4:pushdown-1pct")
def test_fig4_simd_pushdown(benchmark, setup):
    result = benchmark(kernel_simd, setup, True)
    assert result[0].shape == result[1].shape


@pytest.mark.benchmark(group="fig4:pushdown-1pct")
def test_fig4_parallel_pushdown(benchmark, setup):
    result = benchmark(kernel_parallel, setup, True)
    assert result[0].shape == result[1].shape


# ----------------------------------------------------------------------
# The figure itself
# ----------------------------------------------------------------------
def measure_grid(setup: Fig4Setup) -> dict[tuple[str, bool], float]:
    """Wall-time every (kernel, pushdown) cell once."""
    times: dict[tuple[str, bool], float] = {}
    for pushdown in (False, True):
        for name, kernel in KERNELS:
            if kernel is kernel_eager_python and not pushdown:
                with stopwatch() as clock:
                    kernel(setup, pushdown, cap=NAIVE_CAP)
                factor = (len(setup.left_texts) / min(
                    NAIVE_CAP, len(setup.left_texts))) ** 2
                times[(name, pushdown)] = clock.seconds * factor
                continue
            with stopwatch() as clock:
                kernel(setup, pushdown)
            times[(name, pushdown)] = clock.seconds
    return times


def print_figure(times: dict, setup: Fig4Setup) -> None:
    capped = NAIVE_CAP < setup.n
    table = ResultTable(
        f"Figure 4 — execution optimizations (additive), two series "
        f"(n={setup.n}/side, dim=100, cosine >= {THRESHOLD})"
        + (f"\n[eager python/no-pushdown measured at n={NAIVE_CAP}, "
           f"scaled quadratically]" if capped else ""),
        ["execution optimization", "no pushdown [s]",
         "pushdown 1% [s]", "pushdown gain"])
    for name, _ in KERNELS:
        full = times[(name, False)]
        pushed = times[(name, True)]
        table.add(name, full, pushed,
                  f"{full / max(pushed, 1e-9):,.0f}x")
    table.show()
    naive = times[("eager python", False)]
    best = min(times[(name, True)] for name, _ in KERNELS)
    print(f"cumulative gain (naive/no-pushdown -> best/pushdown): "
          f"{naive / max(best, 1e-9):,.0f}x  "
          f"({np.log10(naive / max(best, 1e-9)):.1f} orders of magnitude)")


def test_fig4_shape_holds(setup, capsys):
    """Reproduction claims: pushdown wins orders of magnitude on the
    python kernels; each execution optimization improves the no-pushdown
    series; cumulative gain >= 10^3."""
    times = measure_grid(setup)
    with capsys.disabled():
        print_figure(times, setup)
    # pushdown dominates on every kernel
    for name, _ in KERNELS:
        assert times[(name, True)] <= times[(name, False)] * 1.1, name
    # the python kernels gain >= 100x from pushdown (1% selectivity)
    assert times[("eager python", False)] >= \
        100 * times[("eager python", True)]
    # execution ladder (no-pushdown series) is monotone through simd
    series = [times[(name, False)] for name, _ in KERNELS]
    assert series[0] > series[1] > series[2] >= series[3] * 0.5
    # cumulative orders of magnitude
    best = min(times[(name, True)] for name, _ in KERNELS)
    assert times[("eager python", False)] / best >= 1_000


def main() -> None:
    setup = get_setup()
    print_figure(measure_grid(setup), setup)


if __name__ == "__main__":
    main()
