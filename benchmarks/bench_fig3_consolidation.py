"""Figure 3 — automated, on-the-fly result consolidation.

The conceptual figure promises: context-rich embeddings + distance
matching = auto-consolidation (dedup / entity resolution) without a
domain expert.  This benchmark makes it quantitative: consolidate a
dirty label column (synonyms + misspellings + case noise) with

- the semantic consolidator (embedding threshold clustering),
- edit-distance and n-gram-Jaccard syntactic baselines,
- exact matching (what a plain GROUP BY sees),

reporting pairwise precision/recall/F1 against ground truth and runtime.
Expected shape: semantic wins F1 by a wide margin (syntactic methods
cannot see synonymy), at comparable runtime.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import FIG3_N, ResultTable, stopwatch

import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.integration.consolidation import ResultConsolidator, pairwise_f1
from repro.semantic.cache import EmbeddingCache
from repro.workloads.labels import DirtyLabelWorkload

#: method name -> (constructor kwargs, threshold)
METHODS = {
    "semantic (embeddings)": dict(method="semantic", threshold=0.85),
    "edit distance": dict(method="edit", threshold=0.75),
    "jaccard 3-gram": dict(method="jaccard", threshold=0.4),
    "exact match": dict(method="exact", threshold=1.0),
}


class Fig3Setup:
    def __init__(self, n: int):
        self.labels, self.truth = DirtyLabelWorkload(n=n, seed=59).generate()
        self.model = build_pretrained_model(seed=7)

    def consolidator(self, name: str) -> ResultConsolidator:
        options = dict(METHODS[name])
        cache = EmbeddingCache(self.model) \
            if options["method"] == "semantic" else None
        return ResultConsolidator(cache, threshold=options["threshold"],
                                  method=options["method"])


_SETUP: Fig3Setup | None = None


def get_setup() -> Fig3Setup:
    global _SETUP
    if _SETUP is None:
        _SETUP = Fig3Setup(FIG3_N)
    return _SETUP


@pytest.fixture(scope="module")
def setup():
    return get_setup()


def evaluate(setup: Fig3Setup, name: str):
    consolidator = setup.consolidator(name)
    with stopwatch() as clock:
        report = consolidator.consolidate(setup.labels)
    # map predicted representative -> compare groupings pairwise
    normalized_truth = {label: setup.truth[label] for label in
                        set(setup.labels)}
    precision, recall, f1 = pairwise_f1(report.mapping, normalized_truth)
    return {
        "seconds": clock.seconds,
        "clusters": report.n_clusters,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("method", list(METHODS))
def test_fig3_method_latency(benchmark, setup, method):
    consolidator = setup.consolidator(method)
    report = benchmark(consolidator.consolidate, setup.labels)
    assert report.n_clusters > 0


def test_fig3_shape_holds(setup, capsys):
    """Semantic consolidation dominates syntactic baselines on F1."""
    results = {name: evaluate(setup, name) for name in METHODS}
    with capsys.disabled():
        print_figure(results)
    semantic = results["semantic (embeddings)"]
    assert semantic["f1"] > results["edit distance"]["f1"] + 0.15
    assert semantic["f1"] > results["jaccard 3-gram"]["f1"] + 0.15
    assert semantic["f1"] > results["exact match"]["f1"] + 0.15
    assert semantic["f1"] >= 0.8
    assert semantic["recall"] > results["exact match"]["recall"]


def print_figure(results: dict) -> None:
    table = ResultTable(
        f"Figure 3 — on-the-fly consolidation of {FIG3_N} dirty labels "
        "(synonyms + misspellings + case noise)",
        ["method", "time [s]", "clusters", "precision", "recall", "F1"])
    for name, metrics in results.items():
        table.add(name, metrics["seconds"], metrics["clusters"],
                  metrics["precision"], metrics["recall"], metrics["f1"])
    table.show()


def main() -> None:
    setup = get_setup()
    print_figure({name: evaluate(setup, name) for name in METHODS})


if __name__ == "__main__":
    main()
