"""Figure 5 — optimizing for heterogeneous hardware.

The figure sketches CPUs, GPUs, a TPU, NVMe, and InfiniBand and asks "how
to provision these resources correctly".  This benchmark answers with the
placement optimizer + execution simulator (analytical device models,
DESIGN.md §2) on an **inference-heavy** context-rich query: semantic
matching over free-text customer reviews (every row distinct, so no
dedup relief) with an encoder-class model — the §VI scenario where
"complex models can have many millions of parameters" and shipping model
state / choosing devices actually matters.  The paper's own reference
points: BERT-class encoders (ref [22]) and TPU inference (ref [25]).

Two sweeps:

1. topology x placement policy -> simulated makespan (the headline),
2. model-cost sensitivity: from fastText-class to encoder-class
   per-token cost, showing the crossover where accelerators start paying
   for their startup + model-shipping overhead.

Expected shape: the cost-based hybrid is never worse than any static
policy; accelerators win only past the model-cost crossover; all-on-
accelerator loses to hybrid (relational work is bad on TPU-like devices).
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import SCALE, ResultTable

import pytest

from repro.embeddings.registry import default_registry
from repro.hardware.placement import PlacementOptimizer
from repro.hardware.simulator import ExecutionSimulator
from repro.hardware.topology import standard_topologies
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParams
from repro.relational.expressions import AggExpr, AggFunc, col
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    ScanNode,
    SemanticJoinNode,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.wiki_strings import WikiStringWorkload

REVIEWS_N = {"small": 20_000, "medium": 50_000,
             "paper": 200_000}.get(SCALE, 20_000)

#: Encoder-class per-token inference cost (fastText-class is 200; a
#: transformer encoder is ~2-4 orders of magnitude heavier per token).
ENCODER_TOKEN_COST = 20_000.0


class Fig5Setup:
    def __init__(self):
        reviews = WikiStringWorkload(
            n=REVIEWS_N, seed=29, unique_texts=True,
            concept_fraction=0.4).side("left")
        labels = Table.from_dict({
            "label": ["shoes", "jacket", "trousers", "dress", "shirt",
                      "dog", "cat", "car", "fruit", "sofa"],
            "category": ["clothes"] * 5 + ["animal"] * 2 + ["vehicle",
                                                            "food",
                                                            "furniture"],
        })
        self.catalog = Catalog()
        self.catalog.register("reviews", reviews)
        self.catalog.register("labels", labels)
        self.plan = self._build_plan()
        estimator = CardinalityEstimator(self.catalog, default_registry())
        self.cost_model = CostModel(
            estimator, CostParams(embed_token=ENCODER_TOKEN_COST))
        self.topologies = standard_topologies()

    def _build_plan(self):
        reviews = ScanNode("reviews", self.catalog.get("reviews").schema,
                           qualifier="r")
        labels = ScanNode("labels", self.catalog.get("labels").schema,
                          qualifier="l")
        filtered = FilterNode(reviews, col("r.views") >= 500_000)
        join = SemanticJoinNode(filtered, labels, "r.text", "l.label",
                                "wiki-ft-100", 0.7)
        return AggregateNode(join, ["l.category"],
                             [AggExpr(AggFunc.COUNT, None, "mentions")])


_SETUP: Fig5Setup | None = None


def get_setup() -> Fig5Setup:
    global _SETUP
    if _SETUP is None:
        _SETUP = Fig5Setup()
    return _SETUP


@pytest.fixture(scope="module")
def setup():
    return get_setup()


def simulate_policies(setup: Fig5Setup,
                      cost_model: CostModel | None = None
                      ) -> dict[tuple[str, str], float]:
    """(topology, policy) -> simulated makespan seconds."""
    cost_model = cost_model or setup.cost_model
    results: dict[tuple[str, str], float] = {}
    for topo_name, topology in setup.topologies.items():
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        policies = {"all-cpu": optimizer.place_all_on(setup.plan, "cpu0")}
        accelerators = [d.name for d in topology.compute_devices
                        if d.kind.value in ("gpu", "tpu")]
        for accelerator in accelerators:
            policies[f"all-{accelerator}"] = optimizer.place_all_on(
                setup.plan, accelerator)
            policies[f"model-ops-on-{accelerator}"] = \
                optimizer.place_model_ops_on(setup.plan, accelerator)
        policies["cost-based hybrid"] = optimizer.place(setup.plan)
        for policy_name, placement in policies.items():
            result = simulator.simulate(setup.plan, placement)
            results[(topo_name, policy_name)] = result.makespan
    return results


def sensitivity_sweep(setup: Fig5Setup) -> list[tuple[float, float, float]]:
    """(embed_token_cost, cpu-only, best-hybrid) across model weights."""
    rows = []
    for token_cost in (200.0, 2_000.0, 20_000.0, 200_000.0):
        cost_model = CostModel(setup.cost_model.estimator,
                               CostParams(embed_token=token_cost))
        topology = setup.topologies["cpu+2gpu+tpu"]
        optimizer = PlacementOptimizer(topology, cost_model)
        simulator = ExecutionSimulator(topology, cost_model)
        cpu_only = simulator.simulate(
            setup.plan, optimizer.place_all_on(setup.plan, "cpu0")).makespan
        hybrid = simulator.simulate(
            setup.plan, optimizer.place(setup.plan)).makespan
        rows.append((token_cost, cpu_only, hybrid))
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_placement_optimizer_latency(benchmark, setup):
    topology = setup.topologies["cpu+2gpu+tpu"]
    optimizer = PlacementOptimizer(topology, setup.cost_model)
    placement = benchmark(optimizer.place, setup.plan)
    assert placement.assignment


@pytest.mark.benchmark(group="fig5")
def test_fig5_simulator_latency(benchmark, setup):
    topology = setup.topologies["cpu+2gpu+tpu"]
    optimizer = PlacementOptimizer(topology, setup.cost_model)
    simulator = ExecutionSimulator(topology, setup.cost_model)
    placement = optimizer.place(setup.plan)
    result = benchmark(simulator.simulate, setup.plan, placement)
    assert result.makespan > 0


def test_fig5_shape_holds(setup, capsys):
    results = simulate_policies(setup)
    sweep = sensitivity_sweep(setup)
    with capsys.disabled():
        print_figure(results, setup)
        print_sweep(sweep)
    # hybrid never loses to a static policy on the same topology
    for topo_name in setup.topologies:
        hybrid = results[(topo_name, "cost-based hybrid")]
        for (topo, policy), makespan in results.items():
            if topo == topo_name:
                assert hybrid <= makespan * 1.001, (topo, policy)
    # accelerators pay off for the encoder-class model
    assert results[("cpu+2gpu+tpu", "cost-based hybrid")] < \
        results[("cpu-only", "all-cpu")] * 0.9
    # but NOT at fastText-class cost (the crossover exists)
    light_cpu, light_hybrid = sweep[0][1], sweep[0][2]
    heavy_cpu, heavy_hybrid = sweep[-1][1], sweep[-1][2]
    assert light_hybrid >= light_cpu * 0.5   # no real win when light
    assert heavy_hybrid < heavy_cpu * 0.5    # clear win when heavy


def print_figure(results: dict, setup: Fig5Setup) -> None:
    table = ResultTable(
        f"Figure 5 — simulated makespan, inference-heavy semantic query "
        f"({REVIEWS_N:,} free-text reviews, encoder-class model)",
        ["topology", "policy", "simulated makespan [s]", "vs all-cpu"])
    for topo_name in setup.topologies:
        base = results[(topo_name, "all-cpu")]
        for (topo, policy), makespan in results.items():
            if topo == topo_name:
                table.add(topo_name, policy, makespan,
                          f"{base / makespan:.2f}x")
    table.show()


def print_sweep(sweep) -> None:
    table = ResultTable(
        "Model-weight sensitivity (topology cpu+2gpu+tpu): accelerator "
        "crossover",
        ["per-token model cost", "cpu-only [s]", "cost-based hybrid [s]",
         "hybrid gain"])
    for token_cost, cpu_only, hybrid in sweep:
        table.add(f"{token_cost:,.0f}", cpu_only, hybrid,
                  f"{cpu_only / hybrid:.2f}x")
    table.show()


def main() -> None:
    setup = get_setup()
    print_figure(simulate_policies(setup), setup)
    print_sweep(sensitivity_sweep(setup))


if __name__ == "__main__":
    main()
