"""Shared benchmark configuration and reporting helpers.

Scale is controlled by ``REPRO_BENCH_SCALE``:

- ``small`` (default): sizes that keep the whole suite in a couple of
  minutes, including the deliberately brutal naive rungs,
- ``paper``: the paper's sizes (2 x 10k strings for Figure 4).  The naive
  no-pushdown rung at paper scale is O(10^8) interpreted-Python pair
  comparisons; expect the same "thousands of seconds" bar the paper shows.

Every benchmark prints the table/series it regenerates, so ``pytest
benchmarks/ --benchmark-only -s`` (or running a file directly) reproduces
the paper's numbers-shaped output.
"""

from __future__ import annotations

import os

# BLAS threading must be pinned before NumPy initializes (see conftest).
for _var in ("OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "OMP_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Figure 4 array sizes per scale (per side).
FIG4_N = {"small": 600, "medium": 2_000, "paper": 10_000}[SCALE] \
    if SCALE in ("small", "medium", "paper") else int(SCALE)

#: Retail workload sizing for Figure 2 / Figure 5.
RETAIL_SIZES = {
    "small": dict(n_products=300, n_users=100, n_transactions=1_000,
                  n_images=150),
    "medium": dict(n_products=1_000, n_users=300, n_transactions=5_000,
                   n_images=500),
    "paper": dict(n_products=5_000, n_users=1_000, n_transactions=20_000,
                  n_images=2_000),
}.get(SCALE, dict(n_products=300, n_users=100, n_transactions=1_000,
                  n_images=150))

#: Figure 3 dirty-label counts.
FIG3_N = {"small": 400, "medium": 1_500, "paper": 5_000}.get(SCALE, 400)


@dataclass
class ResultTable:
    """Collects and pretty-prints benchmark rows."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        formatted_rows = []
        for row in self.rows:
            formatted = [_format(value) for value in row]
            widths = [max(w, len(f)) for w, f in zip(widths, formatted)]
            formatted_rows.append(formatted)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        ruler = "-" * len(header)
        lines = [self.title, ruler, header, ruler]
        for formatted in formatted_rows:
            lines.append("  ".join(f.ljust(w)
                                   for f, w in zip(formatted, widths)))
        lines.append(ruler)
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def metrics_snapshot(owner) -> dict:
    """Flat metrics-registry snapshot for a ``BENCH_*.json`` payload.

    ``owner`` is anything with a reachable
    :class:`~repro.obs.metrics.MetricsRegistry` — an ``EngineServer``
    or ``Session`` (via ``.state``), an ``EngineState``, or a registry
    itself.  The shape is the JSON exporter's flat mapping, so every
    committed benchmark records the engine counters (cache hits,
    scheduler admissions, kernel compiles, ...) that produced its
    numbers alongside the numbers themselves.
    """
    from repro.obs.export import json_snapshot
    from repro.obs.metrics import MetricsRegistry

    if isinstance(owner, MetricsRegistry):
        return json_snapshot(owner)
    state = getattr(owner, "state", owner)
    return json_snapshot(state.metrics_registry)


@contextmanager
def stopwatch():
    """Context manager measuring elapsed wall time (``.seconds``)."""

    class _Clock:
        seconds = 0.0

    clock = _Clock()
    start = time.perf_counter()
    try:
        yield clock
    finally:
        clock.seconds = time.perf_counter() - start


def once(benchmark, function, *args, **kwargs):
    """Run a function exactly once under pytest-benchmark.

    Used for the deliberately slow rungs where statistical repetition
    would multiply minutes into hours.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
