"""Incremental-ingest benchmark: delta maintenance vs invalidate-and-rerun.

Defends the ingest subsystem's three load-bearing claims:

1. **Parity.**  After every append, each query in a sweep covering all
   four delta-merge forms (concat chains, limit, top-k under mixed
   sort directions, mergeable aggregates) *and* the refused fallbacks
   (AVG, float SUM, order above an aggregate) answers bit-identically
   to a fresh engine over the grown table.  Maintained or refused,
   stale rows are never served.  Always enforced.
2. **Cache survival.**  Appends bump only the table's ``data_version``:
   across the whole streaming run the plan cache takes zero additional
   misses (hit rate 1.0) and the catalog version never moves.  Always
   enforced.
3. **Speedup.**  A streaming log workload (initial table + append
   batches through :class:`StreamingLogSource`) keeps answering a
   three-query dashboard (semantic filter, recent-events top-k,
   per-level rollup).  The delta path (append with cache maintenance,
   then serve all three) must beat the pre-subsystem baseline —
   blanket invalidation via ``register(replace=True)`` followed by
   full re-executions — by ``SPEEDUP_TARGET``x wall clock.  Staleness
   (mutation start -> every cache patched or invalidated) and
   post-append serve latency are recorded per batch.  Always enforced.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_ingest.py
    PYTHONPATH=src python benchmarks/bench_incremental_ingest.py --quick

``--quick`` (CI smoke) reduces sizes and writes no JSON unless
``--output`` is given.  The full run writes
``BENCH_incremental_ingest.json`` at the repository root, committed so
later PRs have a trajectory to defend.  Exits nonzero on any gate
failure.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot
from repro.engine.session import Session
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.utils.parallel import default_parallelism
from repro.workloads.logs import StreamingLogSource, build_log_model

SPEEDUP_TARGET = 5.0

FULL_ROWS, FULL_DELTA, FULL_APPENDS = 4_000, 200, 4
FULL_INITIAL, FULL_BATCH, FULL_BATCHES = 8_000, 80, 8
QUICK_ROWS, QUICK_DELTA, QUICK_APPENDS = 800, 80, 2
QUICK_INITIAL, QUICK_BATCH, QUICK_BATCHES = 8_000, 80, 3

EVENTS_SCHEMA = Schema([
    Field("id", DataType.INT64),
    Field("grp", DataType.STRING),
    Field("val", DataType.INT64),
    Field("score", DataType.FLOAT64),
])

#: The parity sweep: every merge form the classifier proves, plus the
#: refused shapes whose fallback is targeted invalidation.  The
#: ``maintained`` flag is itself a gate — a silently-refused "provable"
#: plan would still pass parity, but through the slow path.
PARITY_QUERIES = (
    ("concat",      True,  "SELECT id, grp, val FROM events WHERE val > 1"),
    ("limit",       True,  "SELECT id, val FROM events LIMIT 32"),
    ("topk",        True,  "SELECT id, grp, val FROM events "
                           "ORDER BY val DESC, id ASC LIMIT 24"),
    ("sort",        True,  "SELECT id, grp, val FROM events "
                           "ORDER BY grp ASC, val DESC, id ASC"),
    ("aggregate",   True,  "SELECT grp, COUNT(*) AS c, SUM(val) AS s, "
                           "MIN(val) AS lo, MAX(val) AS hi "
                           "FROM events GROUP BY grp"),
    ("avg",         False, "SELECT grp, AVG(val) AS a "
                           "FROM events GROUP BY grp"),
    ("float-sum",   False, "SELECT SUM(score) AS s FROM events"),
    ("sorted-agg",  False, "SELECT grp, COUNT(*) AS c FROM events "
                           "GROUP BY grp ORDER BY c DESC, grp ASC"),
)

#: The streaming dashboard: a semantic filter, a recent-events top-k,
#: and a per-level rollup — all three delta-maintained across every
#: append batch.
DASHBOARD_QUERIES = (
    "SELECT message, level FROM logs "
    "WHERE message ~ 'disk failure' THRESHOLD 0.3",
    "SELECT ts, level, message FROM logs "
    "ORDER BY ts DESC, message ASC LIMIT 50",
    "SELECT level, COUNT(*) AS c FROM logs GROUP BY level",
)


def make_events(n: int, start: int = 0) -> list[dict]:
    return [{"id": start + i, "grp": "abcd"[(start + i) % 4],
             "val": (start + i * 7) % 23,
             "score": float((start + i) % 13) * 0.5}
            for i in range(n)]


def exact_equal(left: Table, right: Table) -> bool:
    if left.schema.names != right.schema.names:
        return False
    for name in left.schema.names:
        a, b = left.column(name), right.column(name)
        if a.dtype != b.dtype or not np.array_equal(a, b):
            return False
    return True


def warm(session: Session, query: str) -> None:
    # first run settles lazy statistics (one catalog-version bump),
    # second caches plan + result at the settled version
    session.sql(query)
    session.sql(query)


def run_parity_sweep(n_rows: int, n_delta: int, n_appends: int) -> dict:
    base = make_events(n_rows)
    live = Session(load_default_model=False)
    live.register_table("events", Table.from_rows(base, EVENTS_SCHEMA))
    for _, _, query in PARITY_QUERIES:
        warm(live, query)
    plan_stats_before = live.state.plan_cache.stats()
    catalog_version_before = live.catalog.version

    rows = list(base)
    maintained: dict[str, int] = {}
    refused: dict[str, int] = {}
    mismatched: list[str] = []
    for step in range(n_appends):
        delta = make_events(n_delta, start=(step + 1) * 1_000_000)
        report = live.append("events", delta)
        for reason, count in report.refusals.items():
            refused[reason] = refused.get(reason, 0) + count
        rows.extend(delta)
        rebuilt = Session(load_default_model=False)
        rebuilt.register_table("events",
                               Table.from_rows(rows, EVENTS_SCHEMA))
        for form, _, query in PARITY_QUERIES:
            if not exact_equal(live.sql(query), rebuilt.sql(query)):
                mismatched.append(f"{form}@append{step}")
        # per-form maintained counts come from re-appending nothing:
        # the report aggregates across entries, so attribute by form
        # via a per-query probe below instead
    # attribute maintenance per form: one fresh engine per query, one
    # append, did the entry patch?
    for form, expect_maintained, query in PARITY_QUERIES:
        probe = Session(load_default_model=False)
        probe.register_table(
            "events", Table.from_rows(make_events(200), EVENTS_SCHEMA))
        warm(probe, query)
        report = probe.append("events", make_events(40, start=9_000_000))
        maintained[form] = report.maintained
        if bool(report.maintained) != expect_maintained:
            mismatched.append(f"{form}:maintained={report.maintained}")

    plan_stats_after = live.state.plan_cache.stats()
    return {
        "parity_queries": len(PARITY_QUERIES),
        "parity_appends": n_appends,
        "ingest_parity": not mismatched,
        "ingest_mismatched": mismatched,
        "maintained_by_form": maintained,
        "refusals": refused,
        "plan_cache_survived": (plan_stats_after.misses
                                == plan_stats_before.misses),
        "catalog_version_stable": (live.catalog.version
                                   == catalog_version_before),
    }


def run_streaming_workload(initial_rows: int, batch_rows: int,
                           n_batches: int) -> dict:
    model = build_log_model()

    def make_session() -> Session:
        session = Session(load_default_model=False)
        session.register_model(model, default=True)
        return session

    stream = StreamingLogSource(initial_rows=initial_rows,
                                batch_rows=batch_rows, seed=67)
    initial = stream.initial()
    warm_batch = stream.next_batch()
    batches = list(stream.batches(n_batches))

    live = make_session()
    live.register_table("logs", initial)
    for query in DASHBOARD_QUERIES:
        warm(live, query)
    # the baseline: the pre-subsystem behavior — replace the table
    # (catalog-version bump nukes every cache) and re-run from scratch
    baseline = make_session()
    baseline.register_table("logs", initial)
    for query in DASHBOARD_QUERIES:
        warm(baseline, query)
    # one unmeasured cycle on both sides so the measured loop sees the
    # steady state, not first-call lazy initialization
    live.append("logs", warm_batch)
    grown = Table.concat([initial, warm_batch])
    baseline.register_table("logs", grown, replace=True)
    for query in DASHBOARD_QUERIES:
        live.sql(query)
        baseline.sql(query)

    plan_misses_before = live.state.plan_cache.stats().misses
    delta_seconds = 0.0
    rerun_seconds = 0.0
    staleness: list[float] = []
    serve_latencies: list[float] = []
    mismatched = 0
    for batch in batches:
        started = time.perf_counter()
        report = live.append("logs", batch)
        serve_start = time.perf_counter()
        answers = [live.sql(query) for query in DASHBOARD_QUERIES]
        now = time.perf_counter()
        delta_seconds += now - started
        serve_latencies.append((now - serve_start)
                               / len(DASHBOARD_QUERIES))
        staleness.append(report.staleness_seconds)

        grown = Table.concat([grown, batch])
        started = time.perf_counter()
        baseline.register_table("logs", grown, replace=True)
        expected = [baseline.sql(query) for query in DASHBOARD_QUERIES]
        rerun_seconds += time.perf_counter() - started
        mismatched += sum(
            1 for answer, control in zip(answers, expected)
            if not exact_equal(answer, control))

    serve_sorted = sorted(serve_latencies)
    p95 = serve_sorted[min(len(serve_sorted) - 1,
                           int(0.95 * len(serve_sorted)))]
    speedup = rerun_seconds / delta_seconds if delta_seconds else 0.0
    ingest_stats = live.state.ingest.stats()
    return {
        "stream_initial_rows": initial_rows,
        "stream_batch_rows": batch_rows,
        "stream_batches": n_batches,
        "dashboard_queries": len(DASHBOARD_QUERIES),
        "stream_final_rows": grown.num_rows,
        "never_stale": mismatched == 0,
        "stream_mismatched_serves": mismatched,
        "delta_seconds": round(delta_seconds, 4),
        "rerun_seconds": round(rerun_seconds, 4),
        "delta_speedup": round(speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
        "staleness_seconds_max": round(max(staleness), 4),
        "staleness_seconds_mean": round(
            sum(staleness) / len(staleness), 4),
        "serve_p95_seconds": round(p95, 5),
        "stream_plan_cache_survived": (
            live.state.plan_cache.stats().misses == plan_misses_before),
        "stream_delta_maintained": ingest_stats["delta_maintained_total"],
        "stream_delta_refused": ingest_stats["delta_refused_total"],
    }


def run(n_rows: int, n_delta: int, n_appends: int, initial_rows: int,
        batch_rows: int, n_batches: int) -> dict:
    results = {
        "cpu_count": default_parallelism(),
        "n_rows": n_rows,
        "n_delta": n_delta,
    }
    results.update(run_parity_sweep(n_rows, n_delta, n_appends))
    results.update(run_streaming_workload(initial_rows, batch_rows,
                                          n_batches))
    results["metrics"] = metrics_snapshot(
        Session(load_default_model=False))
    results["platform"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes, no JSON "
                             "unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_incremental_ingest.json for full "
                             "runs)")
    arguments = parser.parse_args(argv)

    sizes = ((QUICK_ROWS, QUICK_DELTA, QUICK_APPENDS,
              QUICK_INITIAL, QUICK_BATCH, QUICK_BATCHES)
             if arguments.quick
             else (FULL_ROWS, FULL_DELTA, FULL_APPENDS,
                   FULL_INITIAL, FULL_BATCH, FULL_BATCHES))
    started = time.perf_counter()
    results = run(*sizes)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        "Delta maintenance by merge form (one append each)",
        ["form", "maintained"])
    for form, _, _ in PARITY_QUERIES:
        table.add(form, results["maintained_by_form"][form])
    table.show()
    print(f"\ningest parity: "
          f"{'OK' if results['ingest_parity'] else 'MISMATCH'}   "
          f"never stale: "
          f"{'OK' if results['never_stale'] else 'STALE SERVE'}   "
          f"plan cache survived: {results['plan_cache_survived']}   "
          f"delta speedup: {results['delta_speedup']}x "
          f"(target {SPEEDUP_TARGET}x)   "
          f"staleness max: {results['staleness_seconds_max']}s")

    failures: list[str] = []
    if not results["ingest_parity"]:
        failures.append(
            f"append-vs-rebuild diverged on "
            f"{results['ingest_mismatched']}")
    if not results["never_stale"]:
        failures.append(
            f"{results['stream_mismatched_serves']} streaming serves "
            f"returned stale rows")
    if not results["plan_cache_survived"]:
        failures.append("the parity sweep's appends caused plan-cache "
                        "misses")
    if not results["stream_plan_cache_survived"]:
        failures.append("the streaming appends caused plan-cache misses")
    if not results["catalog_version_stable"]:
        failures.append("an append moved the catalog version")
    if results["delta_speedup"] < SPEEDUP_TARGET:
        failures.append(
            f"delta speedup {results['delta_speedup']}x < "
            f"{SPEEDUP_TARGET}x target")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_incremental_ingest.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
