"""Ablation — low-precision (int8) similarity (§VI half-precision point).

Quantifies the trade the paper asks engines to consider: int8 embedding
matrices are 4x smaller (cheaper to ship to accelerators — see the
transfer planner) at a bounded similarity error.  Reports memory, join
agreement vs exact float32, and kernel runtimes.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import SCALE, ResultTable, stopwatch

import numpy as np
import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.semantic.cache import EmbeddingCache
from repro.semantic.join import join_blocked, join_quantized_reranked
from repro.vector.quantization import quantize_rows, quantized_similarity
from repro.workloads.wiki_strings import WikiStringWorkload

THRESHOLD = 0.9
N = {"small": 2_000, "medium": 8_000, "paper": 20_000}.get(SCALE, 2_000)


class QuantSetup:
    def __init__(self):
        model = build_pretrained_model(seed=7)
        cache = EmbeddingCache(model)
        workload = WikiStringWorkload(n=N, seed=37, concept_fraction=0.6)
        left, right = workload.pair()
        self.left = cache.matrix(list(left.column("text")))
        self.right = cache.matrix(list(right.column("text")))


_SETUP: QuantSetup | None = None


def get_setup() -> QuantSetup:
    global _SETUP
    if _SETUP is None:
        _SETUP = QuantSetup()
    return _SETUP


@pytest.fixture(scope="module")
def setup():
    return get_setup()


@pytest.mark.benchmark(group="quantization")
def test_float32_join(benchmark, setup):
    result = benchmark.pedantic(join_blocked, args=(setup.left, setup.right,
                                                    THRESHOLD),
                                rounds=3, iterations=1)
    assert result[0].shape == result[1].shape


@pytest.mark.benchmark(group="quantization")
def test_int8_join(benchmark, setup):
    result = benchmark.pedantic(join_quantized_reranked,
                                args=(setup.left, setup.right, THRESHOLD),
                                rounds=3, iterations=1)
    assert result[0].shape == result[1].shape


def test_quantization_shape(setup, capsys):
    exact = join_blocked(setup.left, setup.right, THRESHOLD)
    exact_pairs = set(zip(exact[0].tolist(), exact[1].tolist()))
    quantized = join_quantized_reranked(setup.left, setup.right, THRESHOLD)
    quantized_pairs = set(zip(quantized[0].tolist(),
                              quantized[1].tolist()))

    ql = quantize_rows(setup.left, assume_normalized=True)
    qr = quantize_rows(setup.right, assume_normalized=True)
    error = np.abs(quantized_similarity(ql, qr)
                   - setup.left @ setup.right.T).max()

    with stopwatch() as float_clock:
        join_blocked(setup.left, setup.right, THRESHOLD)
    with stopwatch() as int_clock:
        join_quantized_reranked(setup.left, setup.right, THRESHOLD)

    table = ResultTable(
        f"int8 quantization ({N}x{N} similarity join, threshold "
        f"{THRESHOLD})",
        ["variant", "matrix bytes", "join pairs", "time [s]",
         "max sim error"])
    table.add("float32 exact", setup.left.nbytes + setup.right.nbytes,
              len(exact_pairs), float_clock.seconds, 0.0)
    table.add("int8 + re-rank", ql.nbytes + qr.nbytes,
              len(quantized_pairs), int_clock.seconds, float(error))
    with capsys.disabled():
        table.show()

    # exactness preserved by the re-rank (guard band covers the error)
    assert quantized_pairs == exact_pairs
    # 4x memory saving
    assert (ql.nbytes + qr.nbytes) < \
        (setup.left.nbytes + setup.right.nbytes) / 3.5
    # quantization error stays within the guard band
    assert error < 0.02


def main() -> None:
    from contextlib import nullcontext

    class _Cap:
        def disabled(self):
            return nullcontext()

    test_quantization_shape(get_setup(), _Cap())


if __name__ == "__main__":
    main()
