"""Row-id join benchmark: id-keyed index reuse + parallel subword kernels.

Defends the two claims of the row-id plumbing PR:

1. **Index identity is id arithmetic.**  The session vector-index cache
   fingerprints on the *sorted arena row-id set* backing the indexed
   embeddings: a repeat query — regardless of duplicate multiplicity or
   value order — is a hit (no rebuild), and the fingerprint never
   re-hashes a value string (the legacy scheme XOR-combined a per-value
   FNV-1a pass on every lookup).
2. **The batch subword path scales across cores.**  The PR-1 serial
   subword/segment-sum kernel fans out over owner-aligned chunks on a
   thread pool; results are bit-identical, and on >= 4 cores the wall
   clock improves >= 1.5x (on fewer cores only parity is enforced —
   the speedup line is still reported).

It also checks **exact join parity** (atol=1e-6) across the
rowkernel / blocked / parallel / index:brute methods through the full
operator path, with duplicated right-side values — the case the old
index-id contract silently mispaired.

Usage::

    PYTHONPATH=src python benchmarks/bench_rowid_join.py
    PYTHONPATH=src python benchmarks/bench_rowid_join.py --quick

``--quick`` (CI smoke) runs reduced sizes and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_rowid_join.json``
at the repository root, which is committed so later PRs have a perf
trajectory to defend.  Exits nonzero when a parity check fails or when
an enforced speedup target is missed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.bench_embedding_pipeline import build_workload
from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.subword import fnv1a
from repro.relational.logical import SemanticJoinNode
from repro.semantic.cache import EmbeddingCache
from repro.semantic.index_cache import IndexCache, _digest_ids
from repro.utils.parallel import default_parallelism

DEFAULT_N_SUBWORD = 50_000
QUICK_N_SUBWORD = 2_000
DEFAULT_N_JOIN = 1_200
QUICK_N_JOIN = 200

#: Join methods whose results must agree exactly (index:brute is exact;
#: lsh/ivf/hnsw are approximate by design and excluded from parity).
PARITY_METHODS = ("rowkernel", "blocked", "parallel", "index:brute")


def legacy_xor_fingerprint(model_name: str, kind: str,
                           values: list[str]) -> tuple:
    """The pre-row-id fingerprint, reproduced for the timing comparison:
    one FNV-1a pass over every value string on every lookup."""
    content_hash = 0
    for value in values:
        content_hash ^= fnv1a(value)
    return (model_name, kind, len(set(values)), content_hash)


def bench_index_cache(model, n_unique: int) -> dict:
    """Two lookups over the same unique value set with different duplicate
    multiplicity and order: second must hit; fingerprints touch no value
    strings."""
    cache = EmbeddingCache(model)
    vocab = sorted(model.vocab)
    unique_values = [f"{vocab[i % len(vocab)]} r{i}"
                     for i in range(n_unique)]
    first_query = unique_values + unique_values[: n_unique // 2]
    second_query = (unique_values[::-1]
                    + unique_values[n_unique // 3:] * 2)

    index_cache = IndexCache()
    with stopwatch() as build_clock:
        index_cache.get_for_values("brute", first_query, cache)
    first_misses = index_cache.misses
    with stopwatch() as hit_clock:
        second_index, _ = index_cache.get_for_values("brute", second_query,
                                                     cache)
    assert index_cache.hits == 1 and first_misses == 1
    assert len(index_cache) == 1

    # fingerprint cost, warm: the full id-space identity pipeline
    # (value -> row-id resolution + unique + digest) vs the legacy
    # per-value FNV-1a re-hash it replaced — apples to apples, both
    # starting from the raw value list
    with stopwatch() as idspace_clock:
        row_ids = cache.row_ids(second_query)
        unique_ids = np.unique(row_ids)
        _digest_ids(unique_ids)
    with stopwatch() as digest_clock:
        _digest_ids(np.unique(row_ids))
    with stopwatch() as legacy_clock:
        legacy_xor_fingerprint(model.name, "brute", second_query)
    return {
        "n_unique_values": n_unique,
        "first_query_values": len(first_query),
        "second_query_values": len(second_query),
        "first_query_misses": first_misses,
        "second_query_hit": index_cache.hits == 1,
        "index_reused": True,
        "value_rehash_count": 0,   # fingerprint is id arithmetic only
        "build_seconds": round(build_clock.seconds, 4),
        "warm_lookup_seconds": round(hit_clock.seconds, 6),
        "fingerprint_idspace_seconds": round(idspace_clock.seconds, 6),
        "fingerprint_digest_only_seconds": round(digest_clock.seconds, 6),
        "fingerprint_legacy_rehash_seconds": round(legacy_clock.seconds, 6),
        "fingerprint_speedup": round(
            legacy_clock.seconds / max(idspace_clock.seconds, 1e-9), 2),
    }


def bench_parallel_subword(model, n: int, workers: int) -> dict:
    """PR-1 serial batch path vs thread-pooled owner-aligned chunks."""
    strings = build_workload(model, n, seed=31)
    model.parallelism = 1
    model.embed_batch(strings[:512])   # warm-up (allocator, numpy paths)

    def timed_embed(worker_count: int) -> tuple[float, np.ndarray]:
        model.parallelism = worker_count
        with stopwatch() as clock:
            rows = model.embed_batch(strings)
        return clock.seconds, rows

    # parity: always exercise the pooled path (4 owner-aligned chunks,
    # meaningful on any core count — chunking must not change results)
    _, serial_rows = timed_embed(1)
    _, pooled_rows = timed_embed(max(workers, 4))
    parity = bool(np.allclose(serial_rows, pooled_rows, atol=1e-6))

    # timing: interleaved best-of-2 per path; on a single-core host the
    # kernel stays serial at workers=1, so the honest speedup is 1.0
    serial_seconds, _ = timed_embed(1)
    if workers > 1:
        parallel_seconds, _ = timed_embed(workers)
        serial_seconds = min(serial_seconds, timed_embed(1)[0])
        parallel_seconds = min(parallel_seconds, timed_embed(workers)[0])
    else:
        parallel_seconds = serial_seconds
    model.parallelism = 1
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    return {
        "n_strings": n,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "single_core_serial_fallback": workers <= 1,
        "parity_atol_1e-6": parity,
    }


def bench_join_parity(model, n_join: int, workers: int) -> dict:
    """One semantic join through every exact method; identical results
    required, with duplicated right-side values in play."""
    from repro.engine.session import Session
    from repro.storage.table import Table

    session = Session(load_default_model=False, parallelism=workers)
    session.register_model(model, default=True)
    vocab = sorted(model.vocab)
    left_values = [f"{vocab[i % len(vocab)]} j{i}" for i in range(n_join)]
    right_unique = ([f"{vocab[i % len(vocab)]} j{i}"
                     for i in range(0, n_join, 2)]
                    + [f"{vocab[i % len(vocab)]} k{i}"
                       for i in range(n_join // 2)])
    # duplicate multiplicity on the right: every value appears twice
    right_values = right_unique + right_unique
    session.register_table("probes", Table.from_dict({
        "pid": list(range(len(left_values))),
        "text": left_values,
    }))
    session.register_table("keys", Table.from_dict({
        "kid": list(range(len(right_values))),
        "label": right_values,
    }))

    def run(method: str):
        plan = session.sql_plan(
            "SELECT * FROM probes AS p SEMANTIC JOIN keys AS k "
            "ON p.text ~ k.label THRESHOLD 0.95")
        for node in plan.walk():
            if isinstance(node, SemanticJoinNode):
                node.hints["method"] = method
        with stopwatch() as clock:
            table = session.execute(plan, optimize=False)
        rows = table.to_rows()
        pairs = sorted((r["p.pid"], r["k.kid"]) for r in rows)
        scores = np.asarray(
            [s for _, _, s in sorted((r["p.pid"], r["k.kid"],
                                      r["similarity"]) for r in rows)])
        return pairs, scores, clock.seconds

    per_method_seconds: dict[str, float] = {}
    reference_pairs, reference_scores, _ = run("blocked")
    parity = True
    for method in PARITY_METHODS:
        pairs, scores, seconds = run(method)
        per_method_seconds[method] = round(seconds, 4)
        if pairs != reference_pairs or not np.allclose(
                scores, reference_scores, atol=1e-6):
            parity = False
    # repeat the index query: same right-side row-id set, so the session
    # index cache must serve the built index (operator-level reuse)
    _, _, warm_seconds = run("index:brute")
    per_method_seconds["index:brute (warm)"] = round(warm_seconds, 4)
    index_stats = session.context.index_cache
    return {
        "n_left": len(left_values),
        "n_right_rows": len(right_values),
        "n_result_pairs": len(reference_pairs),
        "methods": list(PARITY_METHODS),
        "exact_parity_atol_1e-6": parity,
        "per_method_seconds": per_method_seconds,
        "index_cache_misses": index_stats.misses,
        "index_cache_hits": index_stats.hits,
        "index_reused_across_queries": index_stats.hits >= 1,
        # hoisted to the payload's top level by run()
        "metrics": metrics_snapshot(session),
    }


def run(n_subword: int, n_join: int, quick: bool = False) -> dict:
    model = build_pretrained_model(seed=7)
    workers = default_parallelism()
    cores = default_parallelism(clamp=1_000_000)
    results = {
        "cpu_count": cores,
        "workers": workers,
        "index_cache": bench_index_cache(model, max(n_join, 256)),
        "parallel_subword": bench_parallel_subword(model, n_subword,
                                                   workers),
        "join_parity": bench_join_parity(model, n_join, workers),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    results["metrics"] = results["join_parity"].pop("metrics")
    # the 1.5x target only binds where there are cores to scale onto AND
    # the batch is full-size: at --quick n the parallel path engages for
    # a fraction of the work, so CI smoke checks parity only
    results["parallel_subword"]["speedup_enforced"] = (cores >= 4
                                                      and not quick)
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes, no JSON "
                             "unless --output is given")
    parser.add_argument("--n", type=int, default=None,
                        help=f"subword batch size (default "
                             f"{DEFAULT_N_SUBWORD}, quick "
                             f"{QUICK_N_SUBWORD})")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_rowid_join.json for full runs)")
    arguments = parser.parse_args(argv)

    n_subword = arguments.n or (QUICK_N_SUBWORD if arguments.quick
                                else DEFAULT_N_SUBWORD)
    n_join = QUICK_N_JOIN if arguments.quick else DEFAULT_N_JOIN
    if n_subword < 1:
        parser.error(f"--n must be a positive integer, got {n_subword}")
    started = time.perf_counter()
    results = run(n_subword, n_join, quick=arguments.quick)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    index = results["index_cache"]
    subword = results["parallel_subword"]
    parity = results["join_parity"]

    table = ResultTable(
        f"Row-id joins: id-keyed index reuse + parallel subword kernels "
        f"(cores={results['cpu_count']}, workers={results['workers']})",
        ["measure", "value", "note"])
    table.add("index build (1st query)", index["build_seconds"],
              f"{index['n_unique_values']} unique values")
    table.add("index warm lookup (2nd query)",
              index["warm_lookup_seconds"],
              "hit" if index["second_query_hit"] else "MISS")
    table.add("fingerprint: resolve+unique+digest",
              index["fingerprint_idspace_seconds"],
              f"{index['fingerprint_speedup']}x vs legacy re-hash")
    table.add("fingerprint: legacy value re-hash",
              index["fingerprint_legacy_rehash_seconds"], "removed")
    table.add("subword batch serial", subword["serial_seconds"],
              f"n={subword['n_strings']}")
    table.add("subword batch parallel", subword["parallel_seconds"],
              f"{subword['speedup']}x, workers={subword['workers']}")
    for method, seconds in parity["per_method_seconds"].items():
        table.add(f"join {method}", seconds,
                  f"{parity['n_result_pairs']} pairs")
    table.show()
    print(f"\nindex reuse: hit on 2nd query={index['second_query_hit']}, "
          f"value re-hashes={index['value_rehash_count']}")
    print(f"subword parity (atol=1e-6): {subword['parity_atol_1e-6']}; "
          f"join parity across {', '.join(parity['methods'])}: "
          f"{parity['exact_parity_atol_1e-6']}")

    failures: list[str] = []
    if not index["second_query_hit"]:
        failures.append("index cache missed on repeat query")
    if not subword["parity_atol_1e-6"]:
        failures.append("parallel subword path diverged from serial")
    if not parity["exact_parity_atol_1e-6"]:
        failures.append("join methods disagreed")
    if subword["speedup_enforced"] and subword["speedup"] < 1.5:
        failures.append(
            f"parallel subword speedup {subword['speedup']}x < 1.5x "
            f"on {results['cpu_count']} cores")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_rowid_join.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
