"""Embedding hot-path benchmark: seed per-string path vs arena/batch path.

The paper's Figure-4 argument is that model-inference data access must be
optimized like any other engine access path.  This benchmark defends that
for our own pipeline: it embeds ``n`` **distinct** strings (default 50k)
through

- the **seed path**: the per-string loop the repository shipped with —
  one interpreted-Python ``embed()`` round-trip per string (normalize,
  per-gram FNV-1a hashing, small-ndarray math, per-vector normalize), and
- the **batch path**: the vectorized ``embed_batch`` kernel (one
  dedup/partition pass, flattened subword segment-sums, one batched
  normalize) feeding the arena-backed ``EmbeddingCache``,

checks the two produce the same vectors (``atol=1e-6``), and reports the
speedup plus arena warm-path numbers (repeat ``matrix()`` calls are one
fancy-index gather).

The workload mixes the string shapes analytics columns actually contain:
two-word in-vocabulary phrases (product types, categories), phrases of
misspelled/dirty parts (the OOV-subword path), and fully unique tokens
(free-text identifiers; the batch path's worst case — no shared work).
All strings are pairwise distinct, so nothing here measures memoization
of repeated strings; it measures the kernels.

Usage::

    PYTHONPATH=src python benchmarks/bench_embedding_pipeline.py
    PYTHONPATH=src python benchmarks/bench_embedding_pipeline.py --quick

``--quick`` (CI smoke) runs n=2000 and writes no JSON unless ``--output``
is given.  The full run writes ``BENCH_embedding_pipeline.json`` at the
repository root, which is committed so later PRs have a perf trajectory
to defend.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.embeddings.model import EmbeddingModel
from repro.embeddings.pretrained import build_pretrained_model
from repro.semantic.cache import EmbeddingCache
from repro.utils.rng import make_rng

DEFAULT_N = 50_000
QUICK_N = 2_000


def build_workload(model: EmbeddingModel, n: int, seed: int = 23
                   ) -> list[str]:
    """``n`` pairwise-distinct strings shaped like analytics columns.

    40% in-vocabulary two-word phrases, 40% phrases with dirty
    (misspelled) parts, 20% strings containing a globally unique token.
    """
    rng = make_rng(seed)
    vocab = sorted(model.vocab)

    def misspell(word: str, salt: int) -> str:
        if len(word) < 3:
            return word + "x"
        pos = salt % (len(word) - 1)
        chars = list(word)
        chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
        return "".join(chars)

    dirty_pool = [misspell(w, s) for s in range(8) for w in vocab]

    strings: list[str] = []
    seen: set[str] = set()

    def emit(candidate: str, unique_salt: int) -> None:
        if candidate in seen:
            candidate = f"{candidate} u{unique_salt}"
        seen.add(candidate)
        strings.append(candidate)

    n_phrases = (n * 4) // 10
    n_dirty = (n * 4) // 10
    n_unique = n - n_phrases - n_dirty
    v = len(vocab)
    for i in range(n_phrases):
        emit(f"{vocab[i % v]} {vocab[(i // v + i) % v]}", i)
    d = len(dirty_pool)
    for i in range(n_dirty):
        emit(f"{dirty_pool[i % d]} {dirty_pool[(i // d + 3 * i) % d]}", i)
    for i in range(n_unique):
        emit(f"{vocab[int(rng.integers(v))]} q{i}z{int(rng.integers(997))}",
             i)
    assert len(strings) == len(set(strings)) == n
    return strings


def seed_embed_loop(model: EmbeddingModel, texts: list[str]) -> np.ndarray:
    """The seed per-string path: what ``embed_batch`` was before this PR
    (a Python loop of one ``embed()`` round-trip per distinct string)."""
    rows = np.empty((len(texts), model.dim), dtype=np.float32)
    for position, text in enumerate(texts):
        rows[position] = model.embed(text)
    return rows


def seed_matrix_rebuild(store: dict, texts: list[str],
                        dim: int) -> np.ndarray:
    """The seed cache's warm ``matrix()``: rebuild row-by-row from a
    dict of per-string ndarrays."""
    rows = np.empty((len(texts), dim), dtype=np.float32)
    for position, text in enumerate(texts):
        rows[position] = store[text]
    return rows


def _registry_view(cache: EmbeddingCache) -> dict:
    """Arena counters through the metrics registry, for the payload.

    This bench has no engine state, so it registers the cache's gauges
    on a private registry — the snapshot shape matches the server
    benches' ``metrics`` sections.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cache.register_metrics(registry)
    return metrics_snapshot(registry)


def run(n: int, seed: int = 23) -> dict:
    model = build_pretrained_model(seed=7)
    strings = build_workload(model, n, seed=seed)

    with stopwatch() as seed_clock:
        seed_rows = seed_embed_loop(model, strings)
    with stopwatch() as batch_clock:
        batch_rows = model.embed_batch(strings)
    parity = bool(np.allclose(seed_rows, batch_rows, atol=1e-6))

    cache = EmbeddingCache(model)
    with stopwatch() as arena_cold:
        cache.matrix(strings)
    with stopwatch() as arena_warm:
        warm = cache.matrix(strings)
    assert warm.shape == (n, model.dim)

    seed_store = {text: row for text, row in zip(strings, seed_rows)}
    with stopwatch() as dict_warm:
        seed_matrix_rebuild(seed_store, strings, model.dim)

    # id-space flow: operators that hold row ids skip string resolution
    # entirely — repeat access is one contiguous-destination gather
    ids = cache.row_ids(strings)
    with stopwatch() as idspace_warm:
        gathered = cache.rows_for(ids)
    assert gathered.shape == (n, model.dim)

    speedup = seed_clock.seconds / max(batch_clock.seconds, 1e-9)
    gather_speedup = dict_warm.seconds / max(idspace_warm.seconds, 1e-9)
    return {
        "n_distinct_strings": n,
        "parity_atol_1e-6": parity,
        "seed_per_string_seconds": round(seed_clock.seconds, 4),
        "batch_seconds": round(batch_clock.seconds, 4),
        "speedup": round(speedup, 2),
        "arena_cold_seconds": round(arena_cold.seconds, 4),
        "arena_warm_matrix_seconds": round(arena_warm.seconds, 4),
        "arena_idspace_gather_seconds": round(idspace_warm.seconds, 6),
        "dict_warm_rebuild_seconds": round(dict_warm.seconds, 4),
        "idspace_gather_speedup": round(gather_speedup, 2),
        "arena": cache.stats(),
        "metrics": _registry_view(cache),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke mode: n={QUICK_N}, no JSON unless "
                             f"--output is given")
    parser.add_argument("--n", type=int, default=None,
                        help=f"number of distinct strings "
                             f"(default {DEFAULT_N}, quick {QUICK_N})")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_embedding_pipeline.json for full runs)")
    arguments = parser.parse_args(argv)

    n = arguments.n or (QUICK_N if arguments.quick else DEFAULT_N)
    if n < 1:
        parser.error(f"--n must be a positive integer, got {n}")
    started = time.perf_counter()
    results = run(n)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        f"Embedding pipeline: seed per-string vs arena/batch "
        f"(n={n} distinct strings)",
        ["path", "seconds", "vs seed"])
    table.add("seed per-string embed loop",
              results["seed_per_string_seconds"], "1x")
    table.add("batch embed_batch kernel", results["batch_seconds"],
              f"{results['speedup']}x")
    table.add("arena cold matrix()", results["arena_cold_seconds"], "")
    table.add("arena warm matrix() [resolve + gather]",
              results["arena_warm_matrix_seconds"], "")
    table.add("arena id-space rows_for(ids) [pure gather]",
              results["arena_idspace_gather_seconds"],
              f"{results['idspace_gather_speedup']}x vs dict rebuild")
    table.add("dict-of-rows warm rebuild (seed cache)",
              results["dict_warm_rebuild_seconds"], "")
    table.show()
    print(f"\nbatch/scalar parity (atol=1e-6): "
          f"{results['parity_atol_1e-6']}")
    print(f"arena: {results['arena']['rows']} rows, "
          f"{results['arena']['bytes'] / 2**20:.1f} MiB, "
          f"hit rate {results['arena']['hit_rate']:.1%}")

    if not results["parity_atol_1e-6"]:
        raise SystemExit("FAIL: batch path diverged from seed path")

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_embedding_pipeline.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
