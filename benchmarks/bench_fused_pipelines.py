"""Fused-pipeline benchmark: parity, compiled-vs-interpreted speedup,
kernel-cache behaviour, cost-model gating.

Defends the compiled-pipeline execution tier's claims:

1. **Bit-identical parity.**  Every statement answers identically with
   ``compiled_pipelines`` on and off — values *and* dtypes, atol=0.
   When numba is importable the numba backend is additionally checked
   against the pure-python kernel on the same pipeline.  Always
   enforced.
2. **Compiled speedup.**  With a warm kernel cache, the repeat loop of
   the 50k-row filter→project chain must run >= 2x faster fused than
   interpreted.  The interpreted side still enjoys the plan cache, so
   the ratio isolates execution: one generated kernel + single masked
   pass versus the batched operator tree.  Always enforced.
3. **Kernel-cache hit rate.**  The measured repeat loop recompiles
   nothing: hit rate 1.0 over the loop.  Always enforced.
4. **Cost gating.**  A 10-row one-shot query stays interpreted under
   ``compiled_pipelines="auto"`` — the compile would cost more than it
   saves.  Always enforced.

Usage::

    PYTHONPATH=src python benchmarks/bench_fused_pipelines.py
    PYTHONPATH=src python benchmarks/bench_fused_pipelines.py --quick

``--quick`` (CI smoke) reduces sizes/rounds and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_fused_pipelines.json``
at the repository root, committed so later PRs have a trajectory to
defend.  Exits nonzero on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.engine.session import Session
from repro.hardware.jit import NUMBA_AVAILABLE, compile_pipeline
from repro.relational.expressions import Arith, ColumnRef, Compare, Literal
from repro.relational.logical import FilterNode, ProjectNode, ScanNode
from repro.relational.pipeline import PipelineNode
from repro.storage.table import Table
from repro.utils.parallel import default_parallelism

FULL_ROWS = 50_000
# quick mode still enforces the 2x gate, so it needs enough rows for
# execution (what fusion speeds up) to dominate the per-statement
# frontend cost both sides pay equally
QUICK_ROWS = 20_000
FULL_ROUNDS = 30
QUICK_ROUNDS = 8

#: The headline chain the >=2x gate is measured on: Scan -> Filter ->
#: Project with arithmetic, the shape pipeline fusion exists for.
CHAIN_STATEMENT = ("SELECT price * 2.0 AS doubled, qty FROM events "
                   "WHERE price > 20.0")

STATEMENTS = (
    CHAIN_STATEMENT,
    "SELECT qty FROM events WHERE qty < 100 AND price > 5.0",
    "SELECT region, qty FROM events WHERE region IN ('r1', 'r3') "
    "LIMIT 500",
)

SPEEDUP_TARGET = 2.0


def make_events(rows: int) -> Table:
    return Table.from_dict({
        "price": [float((i * 7) % 97) for i in range(rows)],
        "qty": [(i * 13) % 1_000 for i in range(rows)],
        "region": [f"r{i % 5}" for i in range(rows)],
    })


def build_session(rows: int, compiled_pipelines: str) -> Session:
    # result cache off: repeats must re-execute (that is what we time);
    # the plan cache stays on for both sides, so the ratio isolates the
    # execution tier rather than the frontend
    session = Session(load_default_model=False, result_cache_bytes=0,
                      compiled_pipelines=compiled_pipelines)
    session.register_table("events", make_events(rows))
    # two warmup passes: pass 1 triggers lazy statistics (bumping the
    # catalog version), pass 2 plans against the stable version and, on
    # the fused side, compiles every kernel
    for _ in range(2):
        for statement in STATEMENTS:
            session.sql(statement)
    return session


def exact_equal(left: Table, right: Table) -> bool:
    """Bit-exact table comparison: names, dtypes, values (atol=0)."""
    if left.schema.names != right.schema.names:
        return False
    for name in left.schema.names:
        a, b = left.column(name), right.column(name)
        if a.dtype != b.dtype or not np.array_equal(a, b):
            return False
    return True


def numba_backend_parity(session: Session) -> bool | None:
    """Compile the chain pipeline on both backends, compare outputs.

    Returns None (recorded, not gated) when numba is not installed.
    """
    if not NUMBA_AVAILABLE:
        return None
    events = session.state.catalog.get("events")
    scan = ScanNode("events", events.schema)
    chain = ProjectNode(
        FilterNode(scan, Compare(">", ColumnRef("price"), Literal(20.0))),
        [(Arith("*", ColumnRef("price"), Literal(2.0)), "doubled"),
         (ColumnRef("qty"), "qty")])
    node = PipelineNode((scan, chain.child, chain), None)
    spec = node.kernel_spec()
    python_kernel = compile_pipeline(spec, backend="python")
    numba_kernel = compile_pipeline(spec, backend="numba")
    for want, got in zip(python_kernel(events), numba_kernel(events)):
        if want.dtype != got.dtype or not np.array_equal(want, got):
            return False
    return True


def measure_repeats(session: Session, rounds: int) -> dict[str, float]:
    timings = {}
    for statement in STATEMENTS:
        with stopwatch() as clock:
            for _ in range(rounds):
                session.sql(statement)
        timings[statement] = clock.seconds
    return timings


def run(rows: int, rounds: int) -> dict:
    interpreted = build_session(rows, compiled_pipelines="off")
    fused = build_session(rows, compiled_pipelines="auto")

    # --- parity: every statement, fused vs interpreted -----------------
    mismatched = []
    fused_counts = {}
    for statement in STATEMENTS:
        if not exact_equal(interpreted.sql(statement),
                           fused.sql(statement)):
            mismatched.append(statement)
        fused_counts[statement] = fused.last_profile.fused_pipelines
    numba_parity = numba_backend_parity(fused)

    # --- repeat-statement latency with a warm kernel cache -------------
    before = fused.state.kernel_cache.stats()
    interpreted_timings = measure_repeats(interpreted, rounds)
    fused_timings = measure_repeats(fused, rounds)
    after = fused.state.kernel_cache.stats()
    lookups = ((after["hits"] - before["hits"])
               + (after["misses"] - before["misses"]))
    hit_rate = ((after["hits"] - before["hits"]) / lookups
                if lookups else 0.0)

    # --- cost gating: a tiny one-shot stays interpreted under auto -----
    tiny = Session(load_default_model=False, result_cache_bytes=0,
                   compiled_pipelines="auto")
    tiny.register_table("events", make_events(10))
    tiny.sql(CHAIN_STATEMENT)
    tiny_stays_interpreted = tiny.last_profile.fused_pipelines == 0

    per_statement = []
    for statement in STATEMENTS:
        interp_s = interpreted_timings[statement]
        fused_s = fused_timings[statement]
        per_statement.append({
            "statement": statement[:60],
            "rounds": rounds,
            "fused_pipelines": fused_counts[statement],
            "interpreted_seconds": round(interp_s, 6),
            "fused_seconds": round(fused_s, 6),
            "speedup": round(interp_s / fused_s, 2) if fused_s
            else float("inf"),
        })
    chain_row = per_statement[STATEMENTS.index(CHAIN_STATEMENT)]
    return {
        "cpu_count": default_parallelism(),
        "rows": rows,
        "rounds": rounds,
        "n_statements": len(STATEMENTS),
        "parity": not mismatched,
        "mismatched_statements": sorted(set(mismatched)),
        "numba_available": NUMBA_AVAILABLE,
        "numba_backend_parity": numba_parity,
        "per_statement": per_statement,
        "chain_speedup": chain_row["speedup"],
        "speedup_target": SPEEDUP_TARGET,
        "kernel_cache_hit_rate": round(hit_rate, 4),
        "kernel_cache": after,
        "tiny_stays_interpreted": tiny_stays_interpreted,
        "metrics": metrics_snapshot(fused),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes/rounds, no "
                             "JSON unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_fused_pipelines.json for full runs)")
    arguments = parser.parse_args(argv)

    rows = QUICK_ROWS if arguments.quick else FULL_ROWS
    rounds = QUICK_ROUNDS if arguments.quick else FULL_ROUNDS
    started = time.perf_counter()
    results = run(rows, rounds)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        f"Compiled pipelines ({rows:,} rows, {rounds} warmed repeats)",
        ["statement", "fused", "interpreted s", "compiled s", "speedup"])
    for row in results["per_statement"]:
        table.add(row["statement"], row["fused_pipelines"],
                  row["interpreted_seconds"], row["fused_seconds"],
                  f"{row['speedup']}x")
    table.show()
    numba_note = ("skipped (numba not installed)"
                  if results["numba_backend_parity"] is None
                  else "OK" if results["numba_backend_parity"]
                  else "MISMATCH")
    print(f"\nparity: {'OK' if results['parity'] else 'MISMATCH'}   "
          f"numba backend: {numba_note}   "
          f"kernel-cache hit rate: {results['kernel_cache_hit_rate']}   "
          f"tiny one-shot interpreted: "
          f"{'yes' if results['tiny_stays_interpreted'] else 'NO'}")

    failures: list[str] = []
    if not results["parity"]:
        failures.append(
            f"fused diverged from interpreted on "
            f"{results['mismatched_statements']}")
    if results["numba_backend_parity"] is False:
        failures.append("numba backend diverged from python backend")
    if results["chain_speedup"] < SPEEDUP_TARGET:
        failures.append(
            f"filter->project chain speedup {results['chain_speedup']}x "
            f"< {SPEEDUP_TARGET}x")
    if results["kernel_cache_hit_rate"] < 1.0:
        failures.append(
            f"kernel cache hit rate {results['kernel_cache_hit_rate']} "
            f"< 1.0 on warmed repeats")
    if not results["tiny_stays_interpreted"]:
        failures.append("10-row one-shot query was fused under auto")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_fused_pipelines.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
