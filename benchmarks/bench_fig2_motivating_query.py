"""Figure 2 — the motivating context-rich query, naive vs optimized.

"Which clothing products with a price greater than 20 appear in customer
images taken after a specific date, such that more than two objects appear
in the image" — over three sources (RDBMS products, knowledge base,
image store behind an object-detection model).

Measured comparisons:

1. **naive orchestration** — the plan exactly as written (filters on top,
   no data-induced predicates, default physical choices), detection run
   on the full corpus;
2. **optimized** — the holistic optimizer (pushdowns, DIP semantic
   semi-join reduction, access-path selection), detection pushed behind
   the date filter so the model never runs on out-of-range images.

Both must return identical rows; the optimized plan must win.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import RETAIL_SIZES, ResultTable, once, stopwatch

import pytest

from repro.core import ContextRichEngine
from repro.polystore.image_store import ObjectDetectionModel
from repro.workloads.retail import RetailWorkload

QUERY = """
SELECT p.name, p.price, d.image_id, d.label, d.object_count
FROM products AS p
SEMANTIC JOIN kb.category AS k
    ON p.ptype ~ k.subject USING MODEL 'wiki-ft-100' THRESHOLD 0.9
SEMANTIC JOIN images.detections AS d
    ON p.ptype ~ d.label USING MODEL 'wiki-ft-100' THRESHOLD 0.8
WHERE p.price > 20
  AND k.object = 'clothes'
  AND d.date_taken > DATE '2022-06-01'
  AND d.object_count > 2
"""


def build_engine() -> ContextRichEngine:
    engine = ContextRichEngine(seed=7)
    engine.load_retail_workload(RetailWorkload(seed=7, **RETAIL_SIZES))
    return engine


@pytest.fixture(scope="module")
def engine():
    return build_engine()


def run_naive(engine):
    return engine.execute(engine.sql_plan(QUERY), optimize=False)


def run_optimized(engine):
    return engine.execute(engine.sql_plan(QUERY), optimize=True)


@pytest.mark.benchmark(group="fig2")
def test_fig2_naive(benchmark, engine):
    result = once(benchmark, run_naive, engine)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="fig2")
def test_fig2_optimized(benchmark, engine):
    result = once(benchmark, run_optimized, engine)
    assert result.num_rows > 0


def _result_key(table):
    return sorted((r["p.name"], r["d.image_id"], r["d.label"])
                  for r in table.to_rows())


def _build_shape_engine() -> ContextRichEngine:
    """Larger workload for the shape test: total time (optimization
    included) must beat the naive plan, which requires enough data for
    the optimizer to pay for its own overhead — the paper's actual claim."""
    engine = ContextRichEngine(seed=7)
    engine.load_retail_workload(RetailWorkload(
        seed=7, n_products=1_500, n_users=200, n_transactions=2_000,
        n_images=600))
    return engine


def test_fig2_equivalence_and_speedup(capsys):
    # fresh engines: session embedding caches must be equally cold for the
    # naive/optimized comparison to be fair; construction stays untimed
    naive_engine = _build_shape_engine()
    optimized_engine = _build_shape_engine()
    with stopwatch() as naive_clock:
        naive = run_naive(naive_engine)
    with stopwatch() as optimized_clock:  # includes optimization time
        optimized = run_optimized(optimized_engine)
    assert _result_key(naive) == _result_key(optimized)

    inference = measure_inference_pushdown()
    with capsys.disabled():
        print_report(naive_clock.seconds, optimized_clock.seconds,
                     naive.num_rows, inference)
    assert optimized_clock.seconds < naive_clock.seconds
    saved = inference["eager_images"] - inference["pushdown_images"]
    assert saved > 0


def measure_inference_pushdown() -> dict:
    """Step-3 of the motivating example: detection cost with and without
    the date filter pushed below the model invocation."""
    from repro.storage.types import date_to_int

    workload = RetailWorkload(seed=7, **RETAIL_SIZES)
    store = workload.image_store()
    cutoff = date_to_int("2022-06-01")

    eager = ObjectDetectionModel(thesaurus=workload.thesaurus, seed=5)
    store.detect_table(eager)
    lazy = ObjectDetectionModel(thesaurus=workload.thesaurus, seed=5)
    store.detect_table(lazy, after_date=cutoff)
    return {
        "eager_images": eager.images_processed,
        "eager_model_seconds": eager.simulated_seconds,
        "pushdown_images": lazy.images_processed,
        "pushdown_model_seconds": lazy.simulated_seconds,
    }


def print_report(naive_seconds: float, optimized_seconds: float,
                 result_rows: int, inference: dict) -> None:
    table = ResultTable(
        f"Figure 2 — motivating query ({RETAIL_SIZES['n_products']} "
        f"products, {RETAIL_SIZES['n_images']} images); identical results "
        f"({result_rows} rows)",
        ["plan", "engine time [s]", "images through model",
         "simulated model time [s]"])
    table.add("naive orchestration", naive_seconds,
              inference["eager_images"], inference["eager_model_seconds"])
    table.add("holistic optimizer", optimized_seconds,
              inference["pushdown_images"],
              inference["pushdown_model_seconds"])
    table.show()
    print(f"engine speedup: {naive_seconds / optimized_seconds:.1f}x;  "
          f"model invocations saved by date pushdown: "
          f"{inference['eager_images'] - inference['pushdown_images']}")


def main() -> None:
    naive_engine = build_engine()
    optimized_engine = build_engine()
    with stopwatch() as naive_clock:
        naive = run_naive(naive_engine)
    with stopwatch() as optimized_clock:
        run_optimized(optimized_engine)
    print_report(naive_clock.seconds, optimized_clock.seconds,
                 naive.num_rows, measure_inference_pushdown())


if __name__ == "__main__":
    main()
