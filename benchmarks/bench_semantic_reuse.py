"""Semantic-reuse benchmark: bit-identity, refinement speedup, fallbacks.

Defends the subsumption subsystem's claims:

1. **Bit-identical residuals.**  Every threshold/k-refined and
   predicate-extended statement answered from a cached super-result is
   compared — schema, values, and row order — against a server with
   semantic reuse disabled.  Always enforced, and the reuse server's
   metrics must show the answers really were residuals, not fresh
   executions.
2. **Refinement-workload speedup.**  A sweep of distinct refinements of
   a warmed base statement (the interactive tighten-the-query pattern)
   must run >= 5x faster with reuse than without.  Both servers enjoy
   the plan and exact-result caches; every refined statement is an
   exact-cache *miss* in both, so the ratio isolates what subsumption
   saves: the embedding/join execution.  A latency ratio — enforced on
   single-core CI too.
3. **Proven fallbacks.**  A loosened threshold (not subsumed), an
   aggregate statement (ineligible shape), and an approximate-index
   plan (``index:lsh`` forced through the optimizer) must all execute
   normally — zero reuse hits — and the first two stay bit-identical to
   the disabled server.  A ``register_table`` between base and
   refinement must invalidate (fresh answer from the new contents).

Usage::

    PYTHONPATH=src python benchmarks/bench_semantic_reuse.py
    PYTHONPATH=src python benchmarks/bench_semantic_reuse.py --quick

``--quick`` (CI smoke) shrinks sizes/rounds and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_semantic_reuse.json``
at the repository root.  Exits nonzero on any parity failure, a missing
reuse hit, a speedup below 5x, or a fallback that did not execute.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.embeddings.pretrained import build_pretrained_model
from repro.embeddings.thesaurus import default_thesaurus
from repro.optimizer.optimizer import OptimizerConfig
from repro.server import EngineServer
from repro.storage.table import Table
from repro.utils.parallel import default_parallelism
from repro.workloads.retail import RetailWorkload

FULL_SIZES = dict(n_products=12000, n_labels=90, rounds=12)
QUICK_SIZES = dict(n_products=800, n_labels=72, rounds=6)

#: Full runs gate the headline ratio; ``--quick`` (CI smoke) keeps a
#: reduced gate — at smoke sizes the sub-ms residual is planning-bound
#: (parse/bind/optimize dominates both sides), which caps the
#: observable ratio regardless of what reuse saves.
SPEEDUP_TARGET = 5.0
QUICK_SPEEDUP_TARGET = 2.0

JOIN_TEMPLATE = (
    "SELECT p.name, c.label FROM products AS p "
    "SEMANTIC JOIN catalog AS c ON p.ptype ~ c.label "
    "THRESHOLD {threshold:.4f} TOP {k} ORDER BY p.name, c.label")
FILTER_TEMPLATE = (
    "SELECT name, price FROM products WHERE ptype ~ 'shoes' "
    "THRESHOLD {threshold:.4f} ORDER BY name, price")

JOIN_BASE = dict(threshold=0.30, k=40)
FILTER_BASE = dict(threshold=0.30)


def labels_table(n_labels: int) -> Table:
    """> 64 distinct labels, so DIP never rewrites the join's plan
    (its pruning GEMM would make entries reuse-ineligible)."""
    forms = default_thesaurus().all_forms()
    labels = list(forms) + [f"{form} item" for form in forms]
    return Table.from_dict({
        "label": labels[:n_labels],
        "kind": [f"kind_{i % 7}" for i in range(n_labels)],
    })


def ordered_rows(table) -> list[tuple]:
    """Row-order-preserving, bit-exact rendering of a result table."""
    return [tuple(row.items()) for row in table.to_rows()]


def build_server(model, sizes, semantic_reuse,
                 optimizer_config=None) -> EngineServer:
    server = EngineServer(load_default_model=False,
                          semantic_reuse=semantic_reuse,
                          result_cache_bytes=512 * 1024 * 1024,
                          optimizer_config=optimizer_config)
    server.register_model(model, default=True)
    workload = RetailWorkload(seed=7, n_products=sizes["n_products"],
                              n_users=40, n_transactions=200, n_images=40)
    server.register_table("products", workload.products())
    server.register_table("catalog", labels_table(sizes["n_labels"]))
    # two passes: pass 1 triggers lazy statistics (bumping the catalog
    # version) and creates the embedding arena (retiring the -1 keys);
    # pass 2 caches the bases under the now-stable versions
    for _ in range(2):
        server.sql(JOIN_TEMPLATE.format(**JOIN_BASE))
        server.sql(FILTER_TEMPLATE.format(**FILTER_BASE))
    return server


def join_refinements(rounds: int, offset_step: float) -> list[str]:
    """Distinct subsumed variants of the join base: tightened thresholds
    and shrunk k — the expensive statements the speedup gate times."""
    return [JOIN_TEMPLATE.format(
        threshold=JOIN_BASE["threshold"] + offset_step * (i + 1),
        k=max(1, JOIN_BASE["k"] - i)) for i in range(rounds)]


def refinements(rounds: int, offset_step: float) -> list[str]:
    """Distinct subsumed variants of both base statements: tightened
    thresholds, shrunk k, and (filter family) extra cheap predicates."""
    statements = []
    for i in range(rounds):
        statements.append(JOIN_TEMPLATE.format(
            threshold=JOIN_BASE["threshold"] + offset_step * (i + 1),
            k=max(1, JOIN_BASE["k"] - i)))
        refined = FILTER_TEMPLATE.format(
            threshold=FILTER_BASE["threshold"] + offset_step * (i + 1))
        if i % 3 == 2:
            refined = refined.replace(
                " ORDER BY", f" AND price > {10 + i} ORDER BY")
        statements.append(refined)
    return statements


def run(sizes: dict, speedup_target: float) -> dict:
    model = build_pretrained_model(seed=7)
    rounds = sizes["rounds"]

    with build_server(model, sizes, semantic_reuse=True) as reuse_server, \
            build_server(model, sizes, semantic_reuse=False) as baseline:
        # --- bit-identity on a parity sweep ---------------------------
        mismatched = []
        parity_set = refinements(rounds, offset_step=0.0031)
        hits_before = reuse_server.state.reuse_registry.stats().hits
        for statement in parity_set:
            if ordered_rows(reuse_server.sql(statement)) \
                    != ordered_rows(baseline.sql(statement)):
                mismatched.append(statement)
        reuse_hits = (reuse_server.state.reuse_registry.stats().hits
                      - hits_before)
        all_residual = reuse_hits == len(parity_set)

        # --- refinement-sweep latency (join family: the statements
        # whose embedding/join execution subsumption actually skips) ---
        timing_set = join_refinements(rounds, offset_step=0.0017)
        with stopwatch() as baseline_clock:
            for statement in timing_set:
                baseline.sql(statement)
        with stopwatch() as reuse_clock:
            for statement in timing_set:
                reuse_server.sql(statement)
        speedup = (baseline_clock.seconds / reuse_clock.seconds
                   if reuse_clock.seconds else float("inf"))

        # --- fallback proofs ------------------------------------------
        fallbacks = {}
        hits = reuse_server.state.reuse_registry.stats().hits
        loosened = JOIN_TEMPLATE.format(threshold=0.25, k=60)
        fallbacks["loosened_not_subsumed"] = (
            ordered_rows(reuse_server.sql(loosened))
            == ordered_rows(baseline.sql(loosened))
            and reuse_server.state.reuse_registry.stats().hits == hits)
        aggregate = ("SELECT brand, COUNT(*) AS n FROM products "
                     "WHERE ptype ~ 'shoes' THRESHOLD 0.30 "
                     "GROUP BY brand ORDER BY brand")
        aggregate_refined = aggregate.replace("0.30", "0.45")
        for _ in range(2):
            reuse_server.sql(aggregate)
            baseline.sql(aggregate)
        fallbacks["aggregate_ineligible"] = (
            ordered_rows(reuse_server.sql(aggregate_refined))
            == ordered_rows(baseline.sql(aggregate_refined))
            and reuse_server.state.reuse_registry.stats().hits == hits)

        # --- invalidation: register_table between base and refinement -
        probe = FILTER_TEMPLATE.format(threshold=0.41)
        products = reuse_server.state.catalog.get("products")
        truncated = Table(products.schema, {
            name: arr[: products.num_rows // 2]
            for name, arr in products.columns.items()})
        reuse_server.register_table("products", truncated, replace=True)
        baseline.register_table("products", truncated, replace=True)
        for _ in range(2):
            reuse_server.sql(FILTER_TEMPLATE.format(**FILTER_BASE))
            baseline.sql(FILTER_TEMPLATE.format(**FILTER_BASE))
        invalidation_ok = (ordered_rows(reuse_server.sql(probe))
                           == ordered_rows(baseline.sql(probe)))

        reuse_stats = reuse_server.state.reuse_registry.stats().as_dict()
        scheduler_stats = reuse_server.scheduler.stats()
        registry_snapshot = metrics_snapshot(reuse_server)

    # --- approximate-index plans prove ineligible (own servers) -------
    ann_config = OptimizerConfig(semantic_join_methods=("index:lsh",))
    with build_server(model, sizes, semantic_reuse=True,
                      optimizer_config=ann_config) as ann_server:
        admitted_before = ann_server.scheduler.stats()["admitted"]
        ann_server.sql(JOIN_TEMPLATE.format(threshold=0.35, k=20))
        ann_stats = ann_server.state.reuse_registry.stats()
        approximate_fell_back = (
            ann_stats.hits == 0
            and ann_server.scheduler.stats()["admitted"]
            == admitted_before + 1)

    return {
        "cpu_count": default_parallelism(),
        "sizes": {k: v for k, v in sizes.items() if k != "rounds"},
        "rounds": rounds,
        "refinements_per_sweep": len(refinements(rounds, 0.0031)),
        "parity": not mismatched,
        "mismatched_statements": sorted(set(mismatched)),
        "all_parity_answers_residual": all_residual,
        "parity_reuse_hits": reuse_hits,
        "timing_statements": len(timing_set),
        "baseline_sweep_seconds": round(baseline_clock.seconds, 6),
        "reuse_sweep_seconds": round(reuse_clock.seconds, 6),
        "refinement_speedup": round(speedup, 2),
        "speedup_target": speedup_target,
        "fallbacks": fallbacks,
        "approximate_index_fell_back": approximate_fell_back,
        "invalidation_ok": invalidation_ok,
        "reuse_registry": reuse_stats,
        "reuse_noops": scheduler_stats["reuse_noops"],
        "metrics": registry_snapshot,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes/rounds, no "
                             "JSON unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_semantic_reuse.json for full runs)")
    arguments = parser.parse_args(argv)

    sizes = QUICK_SIZES if arguments.quick else FULL_SIZES
    target = QUICK_SPEEDUP_TARGET if arguments.quick else SPEEDUP_TARGET
    started = time.perf_counter()
    results = run(dict(sizes), speedup_target=target)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        f"Semantic reuse ({results['refinements_per_sweep']} distinct "
        f"refinements per sweep)",
        ["metric", "value"])
    table.add("baseline sweep s", results["baseline_sweep_seconds"])
    table.add("reuse sweep s", results["reuse_sweep_seconds"])
    table.add("refinement speedup", f"{results['refinement_speedup']}x")
    table.add("parity", "OK" if results["parity"] else "MISMATCH")
    table.add("all answers residual",
              results["all_parity_answers_residual"])
    table.add("reuse hits (parity sweep)", results["parity_reuse_hits"])
    table.show()
    print(f"\nfallbacks: {results['fallbacks']}   "
          f"approximate-index fell back: "
          f"{results['approximate_index_fell_back']}   "
          f"invalidation: "
          f"{'OK' if results['invalidation_ok'] else 'STALE'}")

    failures: list[str] = []
    if not results["parity"]:
        failures.append(
            f"residual answers diverged on "
            f"{results['mismatched_statements']}")
    if not results["all_parity_answers_residual"]:
        failures.append(
            f"only {results['parity_reuse_hits']} of "
            f"{results['refinements_per_sweep']} refinements answered "
            f"residually")
    if results["refinement_speedup"] < target:
        failures.append(
            f"refinement speedup {results['refinement_speedup']}x "
            f"< {target}x")
    for name, ok in results["fallbacks"].items():
        if not ok:
            failures.append(f"fallback proof failed: {name}")
    if not results["approximate_index_fell_back"]:
        failures.append("approximate-index plan did not fall back")
    if not results["invalidation_ok"]:
        failures.append("register_table served a stale residual")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_semantic_reuse.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
