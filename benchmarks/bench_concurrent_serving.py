"""Concurrent serving benchmark: throughput, parity, plan-cache hit rate.

Defends the serving-layer PR's three claims:

1. **Result parity.**  The same repeated-statement retail workload run
   through the :class:`~repro.server.EngineServer` at 1/4/16 simulated
   clients returns **bit-identical** results to serial single-session
   execution — shared arenas, cached plans, and the scheduler change
   wall time, never answers.
2. **Plan-cache effectiveness.**  After one warmup pass, the repeated
   workload is answered from the plan cache with hit rate >= 0.9 —
   repeated statements skip lexer/parser/binder/optimizer entirely.
   A planner microbench reports the frontend time a hit saves.
3. **Concurrent throughput.**  On >= 4 cores, 4+ clients sustain
   >= 2x the serial queries/second.  On fewer cores only parity and
   hit rate are enforced (this container is often 1-core, as with
   PR 2); the speedup line is still reported for multi-core re-runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrent_serving.py
    PYTHONPATH=src python benchmarks/bench_concurrent_serving.py --quick

``--quick`` (CI smoke) runs reduced sizes/clients and writes no JSON
unless ``--output`` is given.  The full run writes
``BENCH_concurrent_serving.json`` at the repository root, committed so
later PRs have a trajectory to defend.  Exits nonzero on any parity
failure, a plan-cache hit rate below 0.9, or (when enforced) a missed
throughput target.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.embeddings.pretrained import build_pretrained_model
from repro.engine.session import Session
from repro.server import EngineServer
from repro.utils.parallel import default_parallelism
from repro.workloads.retail import RetailWorkload

FULL_SIZES = dict(n_products=400, n_users=150, n_transactions=2_000,
                  n_images=150)
QUICK_SIZES = dict(n_products=120, n_users=40, n_transactions=400,
                   n_images=60)

FULL_CLIENTS = (1, 4, 16)
QUICK_CLIENTS = (1, 4)

FULL_REPEATS = 3
QUICK_REPEATS = 2

#: The repeated-statement workload: interactive relational statements
#: plus semantic work, all deterministically ordered so parity can be
#: checked bit-for-bit.
STATEMENTS = (
    "SELECT brand, COUNT(*) AS n FROM products GROUP BY brand "
    "ORDER BY brand",
    "SELECT ptype, SUM(price) AS total FROM products GROUP BY ptype "
    "ORDER BY ptype",
    "SELECT name, price FROM products WHERE price > 50 "
    "ORDER BY price DESC, name LIMIT 25",
    "SELECT name FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.8 "
    "ORDER BY name",
    "SELECT p.name, k.object FROM products AS p "
    "SEMANTIC JOIN kb.category AS k ON p.ptype ~ k.subject "
    "THRESHOLD 0.9 ORDER BY p.name, k.object",
)


def canonical_rows(table) -> list[tuple]:
    """Order-insensitive, bit-exact canonical form of a result table."""
    rows = [tuple(row.items()) for row in table.to_rows()]
    return sorted(rows, key=repr)


def build_workload(sizes: dict) -> RetailWorkload:
    return RetailWorkload(seed=7, **sizes)


def client_statements(repeats: int) -> list[str]:
    """The per-client statement sequence (identical for every client)."""
    return [statement
            for _ in range(repeats)
            for statement in STATEMENTS]


def run_serial(workload: RetailWorkload, model, repeats: int,
               total_clients: int) -> dict:
    """Single-session baseline over the whole multi-client query list.

    The result cache is pinned OFF (here and in the concurrent runs):
    this benchmark measures *concurrent execution* throughput, and a
    repeated-statement workload would otherwise degenerate into cache
    lookups on both sides — the execution-skip win is measured and
    gated by ``bench_result_cache.py`` instead.
    """
    session = Session(load_default_model=False, result_cache_bytes=0)
    session.register_model(model, default=True)
    workload.register_into(session.catalog, detect=False)
    # Warm in FULL passes over the statement list, not per statement:
    # the first pass computes table statistics lazily (each computation
    # bumps the catalog version and retires every cached plan), so only
    # a second full pass leaves every statement cached under the final,
    # stable version.
    for statement in STATEMENTS:
        session.sql(statement)
    reference = {statement: canonical_rows(session.sql(statement))
                 for statement in STATEMENTS}
    queries = client_statements(repeats) * total_clients
    with stopwatch() as clock:
        for statement in queries:
            session.sql(statement)
    return {
        "reference": reference,
        "queries": len(queries),
        "seconds": clock.seconds,
        "qps": len(queries) / clock.seconds if clock.seconds else 0.0,
    }


def run_concurrent(workload: RetailWorkload, model, n_clients: int,
                   repeats: int, reference: dict) -> dict:
    """One server, ``n_clients`` threads, the repeated workload."""
    # result cache off: execution throughput is what's measured (see
    # run_serial)
    with EngineServer(load_default_model=False,
                      result_cache_bytes=0) as server:
        server.register_model(model, default=True)
        workload.register_into(server.state.catalog, detect=False)
        admin = server.session("warmup")
        # two FULL passes: pass 1 triggers lazy statistics (each bump
        # retires cached plans), pass 2 re-caches every statement under
        # the now-stable catalog version — see run_serial
        for _ in range(2):
            for statement in STATEMENTS:
                admin.sql(statement)
        cache_before = server.state.plan_cache.stats()

        statements = client_statements(repeats)
        mismatches: list[str] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_clients + 1)

        def client_loop(index: int) -> None:
            try:
                client = server.session(f"client-{index}")
                barrier.wait(timeout=60)
                for statement in statements:
                    rows = canonical_rows(client.sql(statement))
                    if rows != reference[statement]:
                        mismatches.append(statement)
            except BaseException as error:  # noqa: BLE001 — reported below
                errors.append(error)

        threads = [threading.Thread(target=client_loop, args=(index,))
                   for index in range(n_clients)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=60)
        with stopwatch() as clock:
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]

        cache_after = server.state.plan_cache.stats()
        lookups = ((cache_after.hits + cache_after.misses)
                   - (cache_before.hits + cache_before.misses))
        hits = cache_after.hits - cache_before.hits
        metrics = server.metrics()
        queries = len(statements) * n_clients
        return {
            "clients": n_clients,
            "queries": queries,
            "seconds": round(clock.seconds, 4),
            "qps": round(queries / clock.seconds, 2) if clock.seconds
            else 0.0,
            "parity": not mismatches,
            "mismatched_statements": sorted(set(mismatches)),
            "plan_cache_hit_rate": round(hits / lookups, 4) if lookups
            else 0.0,
            "queue_wait_seconds_mean":
                metrics["scheduler"]["queue_wait_seconds_mean"],
            "queue_wait_seconds_max":
                metrics["scheduler"]["queue_wait_seconds_max"],
            "lanes": {
                tenant: stats["by_lane"]
                for tenant, stats in
                metrics["scheduler"]["tenants"].items()
                if tenant.startswith("client-")
            },
            # hoisted to the payload's top level by run(): the highest
            # client count's registry is the one worth keeping
            "metrics": metrics_snapshot(server),
        }


def planner_microbench(workload: RetailWorkload, model,
                       rounds: int = 50) -> dict:
    """Frontend cost per statement: cached plan_for vs full replan."""
    session = Session(load_default_model=False)
    session.register_model(model, default=True)
    workload.register_into(session.catalog, detect=False)
    statement = STATEMENTS[-1]
    session.sql(statement)
    session.sql(statement)              # plan now cached, stats settled
    with stopwatch() as cached:
        for _ in range(rounds):
            planned = session.plan_for(statement)
            assert planned.cache_hit
    with stopwatch() as replanned:
        for _ in range(rounds):
            session.optimize(session.sql_plan(statement))
    return {
        "rounds": rounds,
        "cached_plan_for_seconds": round(cached.seconds, 6),
        "full_replan_seconds": round(replanned.seconds, 6),
        "frontend_speedup": round(
            replanned.seconds / cached.seconds, 2) if cached.seconds
        else float("inf"),
    }


def run(sizes: dict, clients: tuple[int, ...], repeats: int) -> dict:
    cpu_count = default_parallelism()
    model = build_pretrained_model(seed=7)
    workload = build_workload(sizes)
    serial = run_serial(workload, model, repeats, max(clients))
    reference = serial.pop("reference")
    concurrent = [run_concurrent(workload, model, n, repeats, reference)
                  for n in clients]
    registry = {}
    for level in concurrent:
        registry = level.pop("metrics")
    return {
        "cpu_count": cpu_count,
        "speedup_enforced": cpu_count >= 4,
        "sizes": sizes,
        "repeats_per_client": repeats,
        "n_statements": len(STATEMENTS),
        "serial": {key: round(value, 4) if isinstance(value, float)
                   else value for key, value in serial.items()},
        "concurrent": concurrent,
        "planner": planner_microbench(workload, model),
        "metrics": registry,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes/clients, no "
                             "JSON unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_concurrent_serving.json for full "
                             "runs)")
    arguments = parser.parse_args(argv)

    sizes = QUICK_SIZES if arguments.quick else FULL_SIZES
    clients = QUICK_CLIENTS if arguments.quick else FULL_CLIENTS
    repeats = QUICK_REPEATS if arguments.quick else FULL_REPEATS
    started = time.perf_counter()
    results = run(sizes, clients, repeats)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    serial_qps = results["serial"]["qps"]
    table = ResultTable(
        f"Concurrent serving (cores={results['cpu_count']}, "
        f"{results['n_statements']} statements x {repeats} repeats "
        f"per client)",
        ["run", "queries", "seconds", "qps", "vs serial", "parity",
         "plan-cache hits"])
    table.add("serial session", results["serial"]["queries"],
              results["serial"]["seconds"], round(serial_qps, 2), "1x",
              "ref", "-")
    for row in results["concurrent"]:
        table.add(f"{row['clients']} client(s)", row["queries"],
                  row["seconds"], row["qps"],
                  f"{row['qps'] / serial_qps:.2f}x" if serial_qps else "-",
                  "OK" if row["parity"] else "MISMATCH",
                  f"{row['plan_cache_hit_rate']:.1%}")
    table.show()
    planner = results["planner"]
    print(f"\nplanner: cached plan_for {planner['cached_plan_for_seconds']}s"
          f" vs full replan {planner['full_replan_seconds']}s over "
          f"{planner['rounds']} rounds -> "
          f"{planner['frontend_speedup']}x frontend skip")

    failures: list[str] = []
    for row in results["concurrent"]:
        if not row["parity"]:
            failures.append(
                f"{row['clients']}-client run diverged from serial on "
                f"{row['mismatched_statements']}")
        if row["plan_cache_hit_rate"] < 0.9:
            failures.append(
                f"{row['clients']}-client plan-cache hit rate "
                f"{row['plan_cache_hit_rate']} < 0.9")
    if results["speedup_enforced"]:
        best = max(row["qps"] for row in results["concurrent"]
                   if row["clients"] >= 4)
        if serial_qps and best < 2.0 * serial_qps:
            failures.append(
                f"throughput {best:.2f} qps < 2x serial "
                f"({serial_qps:.2f} qps) on "
                f"{results['cpu_count']} cores")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_concurrent_serving.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
