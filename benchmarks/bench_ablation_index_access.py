"""Ablation — index-based access paths for similarity search (§V).

"Index-based access for similarity search [20] should be accounted for in
the optimization process": this sweep measures the semantic-join access
paths (brute-force GEMM vs LSH vs IVF vs HNSW) across build-side sizes,
reporting build time, probe time, and recall vs the exact result —
the data the cost model's access-path constants are calibrated against.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import SCALE, ResultTable, stopwatch

import numpy as np
import pytest

from repro.embeddings.pretrained import build_pretrained_model
from repro.semantic.cache import EmbeddingCache
from repro.vector.bruteforce import BruteForceIndex
from repro.vector.hnsw import HNSWIndex
from repro.vector.ivf import IVFFlatIndex
from repro.vector.lsh import LSHIndex
from repro.workloads.wiki_strings import WikiStringWorkload

THRESHOLD = 0.9
SIZES = {"small": [1_000, 8_000], "medium": [5_000, 20_000],
         "paper": [20_000, 100_000]}.get(SCALE, [1_000, 8_000])
N_QUERIES = 100

INDEXES = {
    "brute": lambda: BruteForceIndex(),
    "lsh": lambda: LSHIndex(n_tables=12, n_bits=12, seed=3),
    "ivf": lambda: IVFFlatIndex(n_lists=32, n_probes=4, seed=3),
    "hnsw": lambda: HNSWIndex(m=12, ef_construction=64, ef_search=48,
                              seed=3),
}


class IndexSetup:
    def __init__(self):
        self.model = build_pretrained_model(seed=7)
        cache = EmbeddingCache(self.model)
        biggest = max(SIZES)
        workload = WikiStringWorkload(n=biggest + N_QUERIES, seed=31,
                                      unique_texts=True,
                                      concept_fraction=0.6)
        texts = list(workload.side("left").column("text"))
        self.corpus = cache.matrix(texts[:biggest])
        self.queries = cache.matrix(texts[biggest:biggest + N_QUERIES])


_SETUP: IndexSetup | None = None


def get_setup() -> IndexSetup:
    global _SETUP
    if _SETUP is None:
        _SETUP = IndexSetup()
    return _SETUP


@pytest.fixture(scope="module")
def setup():
    return get_setup()


def evaluate(setup: IndexSetup, kind: str, size: int) -> dict:
    corpus = setup.corpus[:size]
    exact = BruteForceIndex().build(corpus)
    exact_ids = [set(exact.range_search(q, THRESHOLD).ids.tolist())
                 for q in setup.queries]

    index = INDEXES[kind]()
    with stopwatch() as build_clock:
        index.build(corpus)
    with stopwatch() as probe_clock:
        approx_ids = [set(index.range_search(q, THRESHOLD).ids.tolist())
                      for q in setup.queries]
    hits = sum(len(a & e) for a, e in zip(approx_ids, exact_ids))
    expected = sum(len(e) for e in exact_ids)
    return {
        "build": build_clock.seconds,
        "probe": probe_clock.seconds,
        "recall": hits / expected if expected else 1.0,
    }


@pytest.mark.benchmark(group="index-probe")
@pytest.mark.parametrize("kind", list(INDEXES))
def test_index_probe_latency(benchmark, setup, kind):
    size = SIZES[0]
    index = INDEXES[kind]().build(setup.corpus[:size])
    query = setup.queries[0]
    result = benchmark(index.range_search, query, THRESHOLD)
    assert result is not None


@pytest.mark.benchmark(group="index-build")
@pytest.mark.parametrize("kind", list(INDEXES))
def test_index_build_latency(benchmark, setup, kind):
    size = SIZES[0]
    corpus = setup.corpus[:size]
    index = benchmark.pedantic(lambda: INDEXES[kind]().build(corpus),
                               rounds=2, iterations=1, warmup_rounds=0)
    assert index.size == size


def test_index_cache_amortization(setup, capsys):
    """Session-level index reuse: the second query pays probes only.

    §V requires model-side indexes to be 'included in the optimization
    process equally as relational data indexes' — which presumes they are
    amortized artifacts, not per-query builds.
    """
    from repro.semantic.cache import EmbeddingCache
    from repro.semantic.index_cache import IndexCache
    from repro.semantic.join import join_index

    cache = EmbeddingCache(setup.model)
    values = [f"value r{i}" for i in range(1_000)]
    cache.prefetch(values)  # embedding cost excluded: isolate index build
    index_cache = IndexCache()
    queries = setup.queries[:50]

    with stopwatch() as cold:
        index = index_cache.get("hnsw", values, cache)
        join_index(queries, None, THRESHOLD, index=index)
    with stopwatch() as warm:
        index = index_cache.get("hnsw", values, cache)
        join_index(queries, None, THRESHOLD, index=index)

    with capsys.disabled():
        print(f"\nindex-cache amortization (hnsw over 1,000 values, "
              f"50 probes): cold {cold.seconds:.3f}s -> warm "
              f"{warm.seconds:.3f}s ({cold.seconds / warm.seconds:.1f}x)")
    assert index_cache.hits == 1 and index_cache.misses == 1
    assert warm.seconds < cold.seconds / 2


def test_index_ablation_shape(setup, capsys):
    table = ResultTable(
        f"Ablation — similarity access paths ({N_QUERIES} range probes, "
        f"threshold {THRESHOLD})",
        ["corpus size", "index", "build [s]", "probe [s]", "recall"])
    results = {}
    for size in SIZES:
        for kind in INDEXES:
            metrics = evaluate(setup, kind, size)
            results[(size, kind)] = metrics
            table.add(size, kind, metrics["build"], metrics["probe"],
                      metrics["recall"])
    with capsys.disabled():
        table.show()
    largest = max(SIZES)
    # approximate indexes must keep useful recall
    for kind in ("lsh", "ivf", "hnsw"):
        assert results[(largest, kind)]["recall"] >= 0.5, kind
    # and at the largest size, at least one ANN probe beats brute force
    # (the access-path crossover the cost model encodes)
    brute_probe = results[(largest, "brute")]["probe"]
    best_ann = min(results[(largest, k)]["probe"]
                   for k in ("lsh", "ivf", "hnsw"))
    assert best_ann < brute_probe * 1.1


def main() -> None:
    setup = get_setup()

    class _Cap:
        def disabled(self):
            from contextlib import nullcontext

            return nullcontext()

    test_index_ablation_shape(setup, _Cap())


if __name__ == "__main__":
    main()
