"""Regenerate every table and figure of the paper in one run.

Usage:
    python benchmarks/run_all.py [--scale small|medium|paper]

Prints, in order: Table I, Figure 4 (two-series ladder), Figure 2
(motivating query), Figure 3 (consolidation), Figure 5 (hardware
placement), and the ablations (optimizer stages, index access paths,
quantization, JIT).  See EXPERIMENTS.md for the shape claims each section
verifies.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None,
                        choices=["small", "medium", "paper"],
                        help="workload scale (default: REPRO_BENCH_SCALE "
                             "or 'small')")
    arguments = parser.parse_args()
    if arguments.scale:
        os.environ["REPRO_BENCH_SCALE"] = arguments.scale

    # scale must be set before the bench modules read it at import time
    from benchmarks import (
        bench_ablation_index_access,
        bench_ablation_jit,
        bench_ablation_optimizer,
        bench_ablation_quantization,
        bench_concurrent_serving,
        bench_embedding_pipeline,
        bench_fused_pipelines,
        bench_incremental_ingest,
        bench_result_cache,
        bench_rewrite_depth,
        bench_fig2_motivating_query,
        bench_fig3_consolidation,
        bench_fig4_optimization_ladder,
        bench_fig5_hardware_placement,
        bench_rowid_join,
        bench_semantic_reuse,
        bench_table1_semantic_matches,
    )

    sections = [
        ("Table I — semantic matches", bench_table1_semantic_matches),
        ("Figure 4 — optimization ladder",
         bench_fig4_optimization_ladder),
        ("Figure 2 — motivating query", bench_fig2_motivating_query),
        ("Figure 3 — consolidation", bench_fig3_consolidation),
        ("Figure 5 — hardware placement",
         bench_fig5_hardware_placement),
        ("Ablation — optimizer stages", bench_ablation_optimizer),
        ("Ablation — index access paths", bench_ablation_index_access),
        ("Ablation — int8 quantization", bench_ablation_quantization),
        ("Ablation — JIT specialization", bench_ablation_jit),
        ("PR 1 — embedding pipeline", bench_embedding_pipeline),
        ("PR 2 — row-id joins + kernels", bench_rowid_join),
        ("PR 3 — concurrent serving", bench_concurrent_serving),
        ("PR 4 — cross-statement result cache", bench_result_cache),
        ("PR 5 — semantic subsumption reuse", bench_semantic_reuse),
        ("PR 6 — compiled fused pipelines", bench_fused_pipelines),
        ("PR 9 — rewrite depth + generic plans", bench_rewrite_depth),
        ("PR 10 — incremental ingest", bench_incremental_ingest),
    ]
    # the PR benchmarks take argv directly (their own argparse): run
    # them quick at small scale — full runs rewrite the committed
    # BENCH_*.json trajectories, which only a deliberate full-scale
    # invocation should do
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    pr_bench_argv = ["--quick"] if scale == "small" else []
    takes_argv = {bench_embedding_pipeline, bench_rowid_join,
                  bench_concurrent_serving, bench_result_cache,
                  bench_semantic_reuse, bench_fused_pipelines,
                  bench_rewrite_depth, bench_incremental_ingest}
    total_start = time.perf_counter()
    for title, module in sections:
        banner = f"  {title}  "
        print()
        print("=" * len(banner))
        print(banner)
        print("=" * len(banner))
        started = time.perf_counter()
        if module in takes_argv:
            module.main(pr_bench_argv)
        else:
            module.main()
        print(f"[section took {time.perf_counter() - started:.1f}s]")
    print(f"\nall experiments regenerated in "
          f"{time.perf_counter() - total_start:.1f}s "
          f"(scale={os.environ.get('REPRO_BENCH_SCALE', 'small')})")
    print_committed_gates()


#: Gate-carrying keys surfaced in the committed-trajectory summary, in
#: display order; each BENCH_*.json reports whichever subset it has.
_GATE_KEYS = (
    "parity", "parity_atol_1e-6", "join_parity", "invalidation_ok",
    "all_parity_answers_residual", "approximate_index_fell_back",
    "speedup_enforced", "workload_speedup", "refinement_speedup",
    "speedup", "idspace_gather_speedup", "chain_speedup",
    "kernel_cache_hit_rate", "tiny_stays_interpreted", "speedup_target",
    "rewrite_parity", "rewrite_converged", "generic_hit_rate",
    "generic_parity", "demotion_ok", "ingest_parity", "never_stale",
    "delta_speedup", "plan_cache_survived",
)


def print_committed_gates() -> None:
    """One-line summary per committed ``BENCH_*.json`` trajectory.

    The quick-mode sections above never rewrite the committed files, so
    this table shows what the last *full* runs recorded — the numbers a
    regression would be judged against.
    """
    import json

    root = Path(__file__).resolve().parent.parent
    trajectories = sorted(root.glob("BENCH_*.json"))
    print("\ncommitted benchmark trajectories "
          f"({len(trajectories)} files):")
    if not trajectories:
        print("  (none)")
        return
    for path in trajectories:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"  {path.name}: unreadable ({error})")
            continue
        shown = []
        for key in _GATE_KEYS:
            if key not in data:
                continue
            value = data[key]
            if isinstance(value, dict):
                # nested sections (e.g. rowid join_parity) surface only
                # their boolean parity flags
                for sub, flag in value.items():
                    if "parity" in sub and isinstance(flag, bool):
                        shown.append(f"{key}.{sub}={flag}")
                continue
            shown.append(f"{key}={value}")
        cpu = data.get("cpu_count")
        if cpu is not None:
            shown.append(f"cpus={cpu}")
        print(f"  {path.name}: " + ", ".join(shown))


if __name__ == "__main__":
    main()
