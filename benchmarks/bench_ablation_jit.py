"""Ablation — just-in-time predicate specialization (§VI).

The paper: "Just-in-time code generation ... enables specializing the code
paths".  This benchmark measures the interpreted expression tree against
the generated straight-line kernel across batch counts, exposing the
classic JIT trade-off: a fixed compile cost amortized per batch.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import ResultTable, stopwatch

import numpy as np
import pytest

from repro.hardware.jit import compile_predicate
from repro.relational.expressions import col
from repro.storage.table import Table
from repro.utils.rng import make_rng

N_ROWS = 4_096
BATCHES = [1, 16, 256]

PREDICATE = ((col("price") > 50.0) & (col("qty") < 3)) | \
    (col("brand") == "acme")


def make_batch(seed: int = 3) -> Table:
    rng = make_rng(seed)
    return Table.from_dict({
        "price": rng.uniform(0, 100, N_ROWS).tolist(),
        "qty": [int(x) for x in rng.integers(1, 10, N_ROWS)],
        "brand": [["acme", "globex", "initech"][int(i)]
                  for i in rng.integers(0, 3, N_ROWS)],
    })


@pytest.fixture(scope="module")
def batch():
    return make_batch()


@pytest.mark.benchmark(group="jit")
def test_interpreted_predicate(benchmark, batch):
    mask = benchmark(PREDICATE.evaluate, batch)
    assert mask.dtype == bool


@pytest.mark.benchmark(group="jit")
def test_compiled_predicate(benchmark, batch):
    kernel = compile_predicate(PREDICATE)
    mask = benchmark(kernel, batch)
    assert mask.dtype == bool


def test_jit_shape(batch, capsys):
    kernel = compile_predicate(PREDICATE)
    assert np.array_equal(kernel(batch), PREDICATE.evaluate(batch))

    table = ResultTable(
        f"JIT specialization — {N_ROWS}-row batches",
        ["batches", "interpreted [s]", "compiled+compile [s]", "gain"])
    for batches in BATCHES:
        with stopwatch() as interpreted:
            for _ in range(batches):
                PREDICATE.evaluate(batch)
        with stopwatch() as compiled:
            fresh = compile_predicate(PREDICATE)
            for _ in range(batches):
                fresh(batch)
        table.add(batches, interpreted.seconds, compiled.seconds,
                  f"{interpreted.seconds / compiled.seconds:.2f}x")
    with capsys.disabled():
        table.show()
    # at high batch counts the compiled kernel must not lose
    with stopwatch() as interpreted:
        for _ in range(256):
            PREDICATE.evaluate(batch)
    fresh = compile_predicate(PREDICATE)
    with stopwatch() as compiled:
        for _ in range(256):
            fresh(batch)
    assert compiled.seconds <= interpreted.seconds * 1.1


def main() -> None:
    from contextlib import nullcontext

    class _Cap:
        def disabled(self):
            return nullcontext()

    test_jit_shape(make_batch(), _Cap())


if __name__ == "__main__":
    main()
