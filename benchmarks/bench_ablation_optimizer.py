"""Ablation — contribution of each optimizer stage (DESIGN.md §4).

Runs the Figure-2 motivating query with optimizer stages toggled one at a
time (all-off, +rules, +pruning, +join order, +DIP, +physical selection)
and reports actual execution time and the optimizer's own cost estimate.
The rewrite rules (pushdowns) should carry most of the win, with DIP
adding a further reduction — mirroring Figure 4's claim that logical
optimizations dominate.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import RETAIL_SIZES, ResultTable, stopwatch

import pytest

from repro.core import ContextRichEngine
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.workloads.retail import RetailWorkload

QUERY = """
SELECT p.name, p.price, d.image_id, d.label
FROM products AS p
SEMANTIC JOIN kb.category AS k
    ON p.ptype ~ k.subject USING MODEL 'wiki-ft-100' THRESHOLD 0.9
SEMANTIC JOIN images.detections AS d
    ON p.ptype ~ d.label USING MODEL 'wiki-ft-100' THRESHOLD 0.8
WHERE p.price > 20 AND k.object = 'clothes'
  AND d.date_taken > DATE '2022-06-01'
"""

STAGES = [
    ("no optimization", OptimizerConfig(
        enable_rules=False, enable_prune=False, enable_join_order=False,
        enable_dip=False, enable_physical=False)),
    ("+ rewrite rules", OptimizerConfig(
        enable_rules=True, enable_prune=False, enable_join_order=False,
        enable_dip=False, enable_physical=False)),
    ("+ column pruning", OptimizerConfig(
        enable_rules=True, enable_prune=True, enable_join_order=False,
        enable_dip=False, enable_physical=False)),
    ("+ join ordering", OptimizerConfig(
        enable_rules=True, enable_prune=True, enable_join_order=True,
        enable_dip=False, enable_physical=False)),
    ("+ data-induced predicates", OptimizerConfig(
        enable_rules=True, enable_prune=True, enable_join_order=True,
        enable_dip=True, enable_physical=False)),
    ("+ physical selection (full)", OptimizerConfig()),
]


def build_engine() -> ContextRichEngine:
    engine = ContextRichEngine(seed=7)
    engine.load_retail_workload(RetailWorkload(seed=7, **RETAIL_SIZES))
    return engine


_ENGINE: ContextRichEngine | None = None


def get_engine() -> ContextRichEngine:
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = build_engine()
    return _ENGINE


@pytest.fixture(scope="module")
def engine():
    return get_engine()


def run_stage(engine: ContextRichEngine | None, config: OptimizerConfig):
    # a fresh engine per stage: session embedding caches must be equally
    # cold across stages for the comparison to be fair
    engine = build_engine() if engine is None else engine
    plan = engine.sql_plan(QUERY)
    optimizer = Optimizer(engine.catalog, engine.models, config=config,
                          execution_context=engine.context)
    optimized = optimizer.optimize(plan)
    with stopwatch() as clock:
        result = engine.execute(optimized, optimize=False)
    return {
        "seconds": clock.seconds,
        "rows": result.num_rows,
        "estimated_cost": optimizer.last_report.estimated_cost,
        "rules": sum(optimizer.last_report.rules_applied.values()),
        "dip": optimizer.last_report.dip_applied,
    }


@pytest.mark.benchmark(group="optimizer-ablation")
@pytest.mark.parametrize("stage_name,config", STAGES,
                         ids=[name for name, _ in STAGES])
def test_stage_latency(benchmark, engine, stage_name, config):
    plan = engine.sql_plan(QUERY)
    optimizer = Optimizer(engine.catalog, engine.models, config=config,
                          execution_context=engine.context)
    optimized = optimizer.optimize(plan)
    result = benchmark.pedantic(
        engine.execute, args=(optimized,), kwargs={"optimize": False},
        rounds=2, iterations=1, warmup_rounds=1)
    assert result.num_rows >= 0


def test_ablation_shape(capsys):
    results = {name: run_stage(None, config) for name, config in STAGES}
    with capsys.disabled():
        print_table(results)
    rows = {metrics["rows"] for metrics in results.values()}
    assert len(rows) == 1, "every stage must return identical results"
    baseline = results["no optimization"]["seconds"]
    full = results["+ physical selection (full)"]["seconds"]
    assert full < baseline
    rules_only = results["+ rewrite rules"]["seconds"]
    assert rules_only < baseline  # pushdowns carry a real win on their own


def print_table(results: dict) -> None:
    table = ResultTable(
        "Optimizer stage ablation — Figure-2 query "
        f"({RETAIL_SIZES['n_products']} products)",
        ["stages enabled", "exec time [s]", "est. cost", "rules fired",
         "DIP", "rows"])
    baseline = results["no optimization"]["seconds"]
    for name, metrics in results.items():
        table.add(name, metrics["seconds"], metrics["estimated_cost"],
                  metrics["rules"], metrics["dip"], metrics["rows"])
    table.show()
    full = results["+ physical selection (full)"]["seconds"]
    print(f"end-to-end optimizer win: {baseline / full:.1f}x")


def main() -> None:
    results = {name: run_stage(None, config) for name, config in STAGES}
    print_table(results)


if __name__ == "__main__":
    main()
