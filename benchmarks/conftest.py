"""Benchmark-suite configuration.

Pins BLAS to one thread (must happen before NumPy loads): the Figure-4
ladder separates "SIMD" (vectorized single-core kernel) from "scale-up"
(explicit block parallelism), which a silently multi-threaded BLAS would
conflate.
"""

import os

for _var in ("OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "OMP_NUM_THREADS"):
    os.environ.setdefault(_var, "1")
