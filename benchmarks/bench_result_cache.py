"""Result-cache benchmark: parity, repeat-statement speedup, invalidation.

Defends the cross-statement result cache's claims:

1. **Bit-identical parity.**  Every statement of the repeated retail
   workload answers identically with the result cache enabled and
   disabled — a hit is a snapshot of exactly what execution would have
   produced.  Always enforced.
2. **Repeat-statement speedup.**  After a warmup pass, a repeated
   statement skips *execution*, not just the frontend: the cached
   repeat loop must run >= 10x faster than the same loop with the
   result cache disabled (which still enjoys the plan cache — the
   speedup isolated here is pure execution skip).  Always enforced,
   single-core included: unlike the PR-3 throughput gate this is a
   latency ratio, not a parallelism claim.
3. **Invalidation correctness.**  After ``register_table`` over a
   queried table, the next lookup misses and answers from the new
   contents; after re-warming it hits again.  Enforced.

Usage::

    PYTHONPATH=src python benchmarks/bench_result_cache.py
    PYTHONPATH=src python benchmarks/bench_result_cache.py --quick

``--quick`` (CI smoke) reduces sizes/rounds and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_result_cache.json``
at the repository root, committed so later PRs have a trajectory to
defend.  Exits nonzero on any parity failure, a repeat-loop speedup
below 10x, or an invalidation serving stale rows.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, stopwatch
from repro.embeddings.pretrained import build_pretrained_model
from repro.server import EngineServer
from repro.storage.table import Table
from repro.utils.parallel import default_parallelism
from repro.workloads.retail import RetailWorkload

FULL_SIZES = dict(n_products=400, n_users=150, n_transactions=2_000,
                  n_images=150)
QUICK_SIZES = dict(n_products=120, n_users=40, n_transactions=400,
                   n_images=60)

FULL_ROUNDS = 30
QUICK_ROUNDS = 8

#: The repeated-statement workload: relational aggregates plus the
#: semantic operators whose execution dominates repeat cost.
STATEMENTS = (
    "SELECT brand, COUNT(*) AS n FROM products GROUP BY brand "
    "ORDER BY brand",
    "SELECT name, price FROM products WHERE price > 50 "
    "ORDER BY price DESC, name LIMIT 25",
    "SELECT name FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.8 "
    "ORDER BY name",
    "SELECT p.name, k.object FROM products AS p "
    "SEMANTIC JOIN kb.category AS k ON p.ptype ~ k.subject "
    "THRESHOLD 0.9 ORDER BY p.name, k.object",
)

SPEEDUP_TARGET = 10.0


def canonical_rows(table) -> list[tuple]:
    """Order-insensitive, bit-exact canonical form of a result table."""
    rows = [tuple(row.items()) for row in table.to_rows()]
    return sorted(rows, key=repr)


def build_server(model, sizes: dict, result_cache_bytes: int | None
                 ) -> EngineServer:
    server = EngineServer(load_default_model=False,
                          result_cache_bytes=result_cache_bytes)
    server.register_model(model, default=True)
    workload = RetailWorkload(seed=7, **sizes)
    workload.register_into(server.state.catalog, detect=False)
    # two FULL passes: pass 1 triggers lazy statistics (each computation
    # bumps the catalog version, retiring cached entries), pass 2 caches
    # every statement under the now-stable version
    for _ in range(2):
        for statement in STATEMENTS:
            server.sql(statement)
    return server


def measure_repeats(server: EngineServer, rounds: int) -> dict:
    """Per-statement wall time of ``rounds`` warmed repeats."""
    timings = {}
    for statement in STATEMENTS:
        with stopwatch() as clock:
            for _ in range(rounds):
                server.sql(statement)
        timings[statement] = clock.seconds
    return timings


def run(sizes: dict, rounds: int) -> dict:
    model = build_pretrained_model(seed=7)

    with build_server(model, sizes, result_cache_bytes=0) as uncached, \
            build_server(model, sizes, result_cache_bytes=None) as cached:
        # --- parity: every statement, cached vs uncached ---------------
        mismatched = []
        reference = {}
        for statement in STATEMENTS:
            reference[statement] = canonical_rows(uncached.sql(statement))
            for _ in range(2):     # second issue is a result-cache hit
                if canonical_rows(
                        cached.sql(statement)) != reference[statement]:
                    mismatched.append(statement)

        # --- repeat-statement latency ----------------------------------
        uncached_timings = measure_repeats(uncached, rounds)
        cached_timings = measure_repeats(cached, rounds)

        # --- invalidation: replace a table mid-workload ----------------
        probe = STATEMENTS[0]
        products = cached.state.catalog.get("products")
        cached.sql(probe)
        hits_before = cached.state.result_cache.stats().hits
        cached.register_table("products", Table(products.schema, {
            name: arr[: products.num_rows // 2]
            for name, arr in products.columns.items()}), replace=True)
        truncated_rows = canonical_rows(cached.sql(probe))
        stale_served = (cached.state.result_cache.stats().hits
                        > hits_before)
        # ground truth for the truncated contents, computed uncached in
        # a fresh server (`uncached` above still holds the full table)
        with build_server(model, sizes, result_cache_bytes=0) as check:
            check.register_table("products", Table(products.schema, {
                name: arr[: products.num_rows // 2]
                for name, arr in products.columns.items()}), replace=True)
            fresh_reference = canonical_rows(check.sql(probe))
        invalidation_ok = (not stale_served
                           and truncated_rows == fresh_reference)

        result_cache_stats = cached.state.result_cache.stats().as_dict()
        scheduler_stats = cached.scheduler.stats()

    per_statement = []
    for index, statement in enumerate(STATEMENTS):
        uncached_s = uncached_timings[statement]
        cached_s = cached_timings[statement]
        per_statement.append({
            "statement": statement[:60],
            "rounds": rounds,
            "uncached_seconds": round(uncached_s, 6),
            "cached_seconds": round(cached_s, 6),
            "speedup": round(uncached_s / cached_s, 2) if cached_s
            else float("inf"),
        })
    total_uncached = sum(uncached_timings.values())
    total_cached = sum(cached_timings.values())
    return {
        "cpu_count": default_parallelism(),
        "sizes": sizes,
        "rounds": rounds,
        "n_statements": len(STATEMENTS),
        "parity": not mismatched,
        "mismatched_statements": sorted(set(mismatched)),
        "per_statement": per_statement,
        "total_uncached_seconds": round(total_uncached, 6),
        "total_cached_seconds": round(total_cached, 6),
        "workload_speedup": round(total_uncached / total_cached, 2)
        if total_cached else float("inf"),
        "speedup_target": SPEEDUP_TARGET,
        "invalidation_ok": invalidation_ok,
        "result_cache": result_cache_stats,
        "result_cache_noops": scheduler_stats["result_cache_noops"],
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes/rounds, no "
                             "JSON unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_result_cache.json for full runs)")
    arguments = parser.parse_args(argv)

    sizes = QUICK_SIZES if arguments.quick else FULL_SIZES
    rounds = QUICK_ROUNDS if arguments.quick else FULL_ROUNDS
    started = time.perf_counter()
    results = run(sizes, rounds)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        f"Result cache ({rounds} warmed repeats per statement)",
        ["statement", "uncached s", "cached s", "speedup"])
    for row in results["per_statement"]:
        table.add(row["statement"], row["uncached_seconds"],
                  row["cached_seconds"], f"{row['speedup']}x")
    table.add("WHOLE WORKLOAD", results["total_uncached_seconds"],
              results["total_cached_seconds"],
              f"{results['workload_speedup']}x")
    table.show()
    print(f"\nparity: {'OK' if results['parity'] else 'MISMATCH'}   "
          f"invalidation: "
          f"{'OK' if results['invalidation_ok'] else 'STALE'}   "
          f"result-cache noops: {results['result_cache_noops']}")

    failures: list[str] = []
    if not results["parity"]:
        failures.append(
            f"cached diverged from uncached on "
            f"{results['mismatched_statements']}")
    if results["workload_speedup"] < SPEEDUP_TARGET:
        failures.append(
            f"repeat-workload speedup {results['workload_speedup']}x "
            f"< {SPEEDUP_TARGET}x")
    if not results["invalidation_ok"]:
        failures.append("register_table served a stale cached result")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_result_cache.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
