"""Result-cache benchmark: parity, repeat-statement speedup, invalidation.

Defends the cross-statement result cache's claims:

1. **Bit-identical parity.**  Every statement of the repeated retail
   workload answers identically with the result cache enabled and
   disabled — a hit is a snapshot of exactly what execution would have
   produced.  Always enforced.
2. **Repeat-statement speedup.**  After a warmup pass, a repeated
   statement skips *execution*, not just the frontend: the cached
   repeat loop must run >= 10x faster than the same loop with the
   result cache disabled (which still enjoys the plan cache — the
   speedup isolated here is pure execution skip).  Always enforced,
   single-core included: unlike the PR-3 throughput gate this is a
   latency ratio, not a parallelism claim.
3. **Invalidation correctness.**  After ``register_table`` over a
   queried table, the next lookup misses and answers from the new
   contents; after re-warming it hits again.  Enforced.
4. **No-op tracer overhead.**  The measured servers run with
   ``trace_sample=0`` (like the committed trajectory); the disabled
   tracer's per-statement operations — one sample check plus the
   ``trace.enabled`` branches on the hit path — must cost < 1% of the
   mean cached statement latency.  Enforced; a second cached server
   with ``trace_sample=1`` reports the full-sampling overhead for
   comparison (informational).

Usage::

    PYTHONPATH=src python benchmarks/bench_result_cache.py
    PYTHONPATH=src python benchmarks/bench_result_cache.py --quick

``--quick`` (CI smoke) reduces sizes/rounds and writes no JSON unless
``--output`` is given.  The full run writes ``BENCH_result_cache.json``
at the repository root, committed so later PRs have a trajectory to
defend.  Exits nonzero on any parity failure, a repeat-loop speedup
below 10x, or an invalidation serving stale rows.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import ResultTable, metrics_snapshot, stopwatch
from repro.obs.trace import NULL_TRACE
from repro.embeddings.pretrained import build_pretrained_model
from repro.server import EngineServer
from repro.storage.table import Table
from repro.utils.parallel import default_parallelism
from repro.workloads.retail import RetailWorkload

FULL_SIZES = dict(n_products=400, n_users=150, n_transactions=2_000,
                  n_images=150)
QUICK_SIZES = dict(n_products=120, n_users=40, n_transactions=400,
                   n_images=60)

FULL_ROUNDS = 30
QUICK_ROUNDS = 8

#: The repeated-statement workload: relational aggregates plus the
#: semantic operators whose execution dominates repeat cost.
STATEMENTS = (
    "SELECT brand, COUNT(*) AS n FROM products GROUP BY brand "
    "ORDER BY brand",
    "SELECT name, price FROM products WHERE price > 50 "
    "ORDER BY price DESC, name LIMIT 25",
    "SELECT name FROM products WHERE ptype ~ 'shoes' THRESHOLD 0.8 "
    "ORDER BY name",
    "SELECT p.name, k.object FROM products AS p "
    "SEMANTIC JOIN kb.category AS k ON p.ptype ~ k.subject "
    "THRESHOLD 0.9 ORDER BY p.name, k.object",
)

SPEEDUP_TARGET = 10.0

#: Disabled tracing may cost at most this percentage of the mean cached
#: statement latency (the bound ``docs/observability.md`` cites).
TRACE_NOOP_BUDGET_PCT = 1.0


def canonical_rows(table) -> list[tuple]:
    """Order-insensitive, bit-exact canonical form of a result table."""
    rows = [tuple(row.items()) for row in table.to_rows()]
    return sorted(rows, key=repr)


def build_server(model, sizes: dict, result_cache_bytes: int | None,
                 trace_sample: float = 0.0) -> EngineServer:
    # trace_sample=0 by default: the committed trajectory measures the
    # disabled-tracer hot path (gate 4 bounds what "disabled" costs)
    server = EngineServer(load_default_model=False,
                          result_cache_bytes=result_cache_bytes,
                          trace_sample=trace_sample)
    server.register_model(model, default=True)
    workload = RetailWorkload(seed=7, **sizes)
    workload.register_into(server.state.catalog, detect=False)
    # two FULL passes: pass 1 triggers lazy statistics (each computation
    # bumps the catalog version, retiring cached entries), pass 2 caches
    # every statement under the now-stable version
    for _ in range(2):
        for statement in STATEMENTS:
            server.sql(statement)
    return server


def measure_repeats(server: EngineServer, rounds: int) -> dict:
    """Per-statement wall time of ``rounds`` warmed repeats."""
    timings = {}
    for statement in STATEMENTS:
        with stopwatch() as clock:
            for _ in range(rounds):
                server.sql(statement)
        timings[statement] = clock.seconds
    return timings


def noop_tracer_cost(server: EngineServer,
                     iterations: int = 200_000) -> float:
    """Per-statement seconds of the disabled tracer's operations.

    Replays exactly what a cached statement executes when
    ``trace_sample=0``: the inline sample check in ``submit``/``sql``
    plus the three ``trace.enabled`` branches on the hit path
    (``plan_for``, the result-cache probe, the finish guard).
    """
    tracer = server.state.tracer
    if tracer.sample > 0.0:
        raise ValueError("no-op cost needs a trace_sample=0 server")
    start = time.perf_counter()
    for _ in range(iterations):
        trace = tracer.start("statement") if tracer.sample > 0.0 \
            else NULL_TRACE
        if trace.enabled or trace.enabled or trace.enabled:
            raise AssertionError("disabled tracer produced a live trace")
    return (time.perf_counter() - start) / iterations


def run(sizes: dict, rounds: int) -> dict:
    model = build_pretrained_model(seed=7)

    with build_server(model, sizes, result_cache_bytes=0) as uncached, \
            build_server(model, sizes, result_cache_bytes=None) as cached:
        # --- parity: every statement, cached vs uncached ---------------
        mismatched = []
        reference = {}
        for statement in STATEMENTS:
            reference[statement] = canonical_rows(uncached.sql(statement))
            for _ in range(2):     # second issue is a result-cache hit
                if canonical_rows(
                        cached.sql(statement)) != reference[statement]:
                    mismatched.append(statement)

        # --- repeat-statement latency ----------------------------------
        uncached_timings = measure_repeats(uncached, rounds)
        cached_timings = measure_repeats(cached, rounds)

        # --- invalidation: replace a table mid-workload ----------------
        probe = STATEMENTS[0]
        products = cached.state.catalog.get("products")
        cached.sql(probe)
        hits_before = cached.state.result_cache.stats().hits
        cached.register_table("products", Table(products.schema, {
            name: arr[: products.num_rows // 2]
            for name, arr in products.columns.items()}), replace=True)
        truncated_rows = canonical_rows(cached.sql(probe))
        stale_served = (cached.state.result_cache.stats().hits
                        > hits_before)
        # ground truth for the truncated contents, computed uncached in
        # a fresh server (`uncached` above still holds the full table)
        with build_server(model, sizes, result_cache_bytes=0) as check:
            check.register_table("products", Table(products.schema, {
                name: arr[: products.num_rows // 2]
                for name, arr in products.columns.items()}), replace=True)
            fresh_reference = canonical_rows(check.sql(probe))
        invalidation_ok = (not stale_served
                           and truncated_rows == fresh_reference)

        # --- tracer overhead: no-op budget + full-sampling A/B ---------
        noop_seconds = noop_tracer_cost(cached)
        mean_cached = (sum(cached_timings.values())
                       / (rounds * len(STATEMENTS)))
        noop_pct = 100.0 * noop_seconds / mean_cached if mean_cached \
            else 0.0

        result_cache_stats = cached.state.result_cache.stats().as_dict()
        scheduler_stats = cached.scheduler.stats()
        registry_snapshot = metrics_snapshot(cached)

    with build_server(model, sizes, result_cache_bytes=None,
                      trace_sample=1.0) as traced:
        traced_total = sum(measure_repeats(traced, rounds).values())

    per_statement = []
    for index, statement in enumerate(STATEMENTS):
        uncached_s = uncached_timings[statement]
        cached_s = cached_timings[statement]
        per_statement.append({
            "statement": statement[:60],
            "rounds": rounds,
            "uncached_seconds": round(uncached_s, 6),
            "cached_seconds": round(cached_s, 6),
            "speedup": round(uncached_s / cached_s, 2) if cached_s
            else float("inf"),
        })
    total_uncached = sum(uncached_timings.values())
    total_cached = sum(cached_timings.values())
    return {
        "cpu_count": default_parallelism(),
        "sizes": sizes,
        "rounds": rounds,
        "n_statements": len(STATEMENTS),
        "parity": not mismatched,
        "mismatched_statements": sorted(set(mismatched)),
        "per_statement": per_statement,
        "total_uncached_seconds": round(total_uncached, 6),
        "total_cached_seconds": round(total_cached, 6),
        "workload_speedup": round(total_uncached / total_cached, 2)
        if total_cached else float("inf"),
        "speedup_target": SPEEDUP_TARGET,
        "invalidation_ok": invalidation_ok,
        "tracing": {
            "trace_sample": 0.0,
            "noop_tracer_ns_per_statement": round(noop_seconds * 1e9, 1),
            "noop_tracer_overhead_pct": round(noop_pct, 3),
            "noop_budget_pct": TRACE_NOOP_BUDGET_PCT,
            "traced_cached_seconds": round(traced_total, 6),
            "full_sampling_overhead_pct": round(
                100.0 * (traced_total - total_cached) / total_cached, 1)
            if total_cached else 0.0,
        },
        "metrics": registry_snapshot,
        "result_cache": result_cache_stats,
        "result_cache_noops": scheduler_stats["result_cache_noops"],
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: reduced sizes/rounds, no "
                             "JSON unless --output is given")
    parser.add_argument("--output", type=Path, default=None,
                        help="JSON output path (default: repo root "
                             "BENCH_result_cache.json for full runs)")
    arguments = parser.parse_args(argv)

    sizes = QUICK_SIZES if arguments.quick else FULL_SIZES
    rounds = QUICK_ROUNDS if arguments.quick else FULL_ROUNDS
    started = time.perf_counter()
    results = run(sizes, rounds)
    results["total_benchmark_seconds"] = round(
        time.perf_counter() - started, 2)

    table = ResultTable(
        f"Result cache ({rounds} warmed repeats per statement)",
        ["statement", "uncached s", "cached s", "speedup"])
    for row in results["per_statement"]:
        table.add(row["statement"], row["uncached_seconds"],
                  row["cached_seconds"], f"{row['speedup']}x")
    table.add("WHOLE WORKLOAD", results["total_uncached_seconds"],
              results["total_cached_seconds"],
              f"{results['workload_speedup']}x")
    table.show()
    tracing = results["tracing"]
    print(f"\nparity: {'OK' if results['parity'] else 'MISMATCH'}   "
          f"invalidation: "
          f"{'OK' if results['invalidation_ok'] else 'STALE'}   "
          f"result-cache noops: {results['result_cache_noops']}")
    print(f"tracer: no-op "
          f"{tracing['noop_tracer_ns_per_statement']:.0f} ns/stmt "
          f"({tracing['noop_tracer_overhead_pct']}% of cached latency, "
          f"budget {tracing['noop_budget_pct']}%)   full sampling "
          f"+{tracing['full_sampling_overhead_pct']}%")

    failures: list[str] = []
    if not results["parity"]:
        failures.append(
            f"cached diverged from uncached on "
            f"{results['mismatched_statements']}")
    if results["workload_speedup"] < SPEEDUP_TARGET:
        failures.append(
            f"repeat-workload speedup {results['workload_speedup']}x "
            f"< {SPEEDUP_TARGET}x")
    if not results["invalidation_ok"]:
        failures.append("register_table served a stale cached result")
    if tracing["noop_tracer_overhead_pct"] >= TRACE_NOOP_BUDGET_PCT:
        failures.append(
            f"disabled tracer costs "
            f"{tracing['noop_tracer_overhead_pct']}% of the cached hot "
            f"path (budget {TRACE_NOOP_BUDGET_PCT}%)")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))

    output = arguments.output
    if output is None and not arguments.quick:
        output = (Path(__file__).resolve().parent.parent
                  / "BENCH_result_cache.json")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
